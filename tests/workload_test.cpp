// Unit tests for the workload module: PUMA application profiles (Fig. 1(d)
// characterisation), the MSD generator (Table III), arrival processes.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/error.h"
#include "common/rng.h"
#include "workload/apps.h"
#include "workload/arrival.h"
#include "workload/job_spec.h"
#include "workload/msd.h"

namespace eant::workload {
namespace {

TEST(Apps, NamesAndLookup) {
  EXPECT_EQ(app_name(AppKind::kWordcount), "Wordcount");
  EXPECT_EQ(app_name(AppKind::kGrep), "Grep");
  EXPECT_EQ(app_name(AppKind::kTerasort), "Terasort");
  EXPECT_EQ(all_apps().size(), 3u);
  for (AppKind k : all_apps()) {
    EXPECT_EQ(profile_for(k).kind, k);
    EXPECT_EQ(profile_for(k).name, app_name(k));
  }
}

TEST(Apps, WordcountIsCpuBoundOthersAreIoBound) {
  // Paper Fig. 1(d): Wordcount is map/CPU-intensive; Grep and Terasort are
  // IO-intensive.  Use a 40 MB/s reference disk (desktop-class).
  const double wc = map_cpu_fraction(profile_for(AppKind::kWordcount), 40.0);
  const double gr = map_cpu_fraction(profile_for(AppKind::kGrep), 40.0);
  const double ts = map_cpu_fraction(profile_for(AppKind::kTerasort), 40.0);
  EXPECT_GT(wc, 0.8);
  EXPECT_LT(gr, 0.75);
  EXPECT_LT(ts, 0.75);
  EXPECT_GT(wc, gr);
  EXPECT_GT(wc, ts);
}

TEST(Apps, TerasortShufflesItsWholeInput) {
  EXPECT_DOUBLE_EQ(profile_for(AppKind::kTerasort).map_output_ratio, 1.0);
  EXPECT_LT(profile_for(AppKind::kWordcount).map_output_ratio, 0.2);
}

TEST(Apps, ProfilesArePositive) {
  for (AppKind k : all_apps()) {
    const AppProfile& p = profile_for(k);
    EXPECT_GT(p.map_cpu_s_per_mb, 0.0);
    EXPECT_GT(p.map_io_mb_per_mb, 0.0);
    EXPECT_GT(p.map_cpu_demand, 0.0);
    EXPECT_GT(p.map_output_ratio, 0.0);
    EXPECT_GT(p.reduce_cpu_s_per_mb, 0.0);
    EXPECT_GT(p.reduce_io_mb_per_mb, 0.0);
    EXPECT_GT(p.reduce_cpu_demand, 0.0);
  }
}

TEST(JobSpec, DisplayAndClassKey) {
  JobSpec s;
  s.app = AppKind::kGrep;
  s.size_class = SizeClass::kMedium;
  EXPECT_EQ(s.display_name(), "Grep-M");
  EXPECT_EQ(s.class_key(), "Grep-M");
  EXPECT_EQ(size_class_suffix(SizeClass::kSmall), "S");
  EXPECT_EQ(size_class_suffix(SizeClass::kLarge), "L");
}

TEST(Msd, GeneratesConfiguredJobCount) {
  MsdGenerator gen(MsdConfig{});
  Rng rng(1);
  const auto jobs = gen.generate(rng);
  EXPECT_EQ(jobs.size(), 87u);
}

TEST(Msd, ClassSharesFollowTableThree) {
  MsdConfig cfg;
  cfg.num_jobs = 7000;
  MsdGenerator gen(cfg);
  Rng rng(2);
  const auto jobs = gen.generate(rng);
  std::map<SizeClass, int> counts;
  for (const auto& j : jobs) ++counts[j.size_class];
  // Renormalised Table III shares: 4/7, 2/7, 1/7.
  EXPECT_NEAR(counts[SizeClass::kSmall] / 7000.0, 4.0 / 7.0, 0.03);
  EXPECT_NEAR(counts[SizeClass::kMedium] / 7000.0, 2.0 / 7.0, 0.03);
  EXPECT_NEAR(counts[SizeClass::kLarge] / 7000.0, 1.0 / 7.0, 0.03);
}

TEST(Msd, InputSizesRespectScaledClassRanges) {
  MsdConfig cfg;
  cfg.num_jobs = 500;
  MsdGenerator gen(cfg);
  Rng rng(3);
  for (const auto& j : gen.generate(rng)) {
    double lo = 0, hi = 0;
    switch (j.size_class) {
      case SizeClass::kSmall:
        lo = cfg.small_min_mb;
        hi = cfg.small_max_mb;
        break;
      case SizeClass::kMedium:
        lo = cfg.medium_min_mb;
        hi = cfg.medium_max_mb;
        break;
      case SizeClass::kLarge:
        lo = cfg.large_min_mb;
        hi = cfg.large_max_mb;
        break;
    }
    EXPECT_GE(j.input_mb, std::max(kHdfsBlockMb, lo * cfg.input_scale) - 1e-9);
    EXPECT_LE(j.input_mb, hi * cfg.input_scale + 1e-9);
    EXPECT_GE(j.num_reduces, 1);
  }
}

TEST(Msd, LargeJobsAreLargerThanSmallJobs) {
  MsdConfig cfg;
  cfg.num_jobs = 2000;
  MsdGenerator gen(cfg);
  Rng rng(4);
  double small_max = 0.0, large_min = 1e18;
  for (const auto& j : gen.generate(rng)) {
    if (j.size_class == SizeClass::kSmall) {
      small_max = std::max(small_max, j.input_mb);
    }
    if (j.size_class == SizeClass::kLarge) {
      large_min = std::min(large_min, j.input_mb);
    }
  }
  EXPECT_LT(small_max, large_min * 1.01);  // class ranges are disjoint
}

TEST(Msd, SubmitTimesAreSortedPoisson) {
  MsdConfig cfg;
  cfg.num_jobs = 300;
  cfg.mean_interarrival = 60.0;
  MsdGenerator gen(cfg);
  Rng rng(5);
  const auto jobs = gen.generate(rng);
  EXPECT_DOUBLE_EQ(jobs.front().submit_time, 0.0);
  double prev = -1.0;
  double total_gap = 0.0;
  for (const auto& j : jobs) {
    EXPECT_GE(j.submit_time, prev);
    prev = j.submit_time;
  }
  total_gap = jobs.back().submit_time / (jobs.size() - 1);
  EXPECT_NEAR(total_gap, 60.0, 12.0);
}

TEST(Msd, UsesAllThreeApplications) {
  MsdConfig cfg;
  cfg.num_jobs = 200;
  MsdGenerator gen(cfg);
  Rng rng(6);
  std::map<AppKind, int> apps;
  for (const auto& j : gen.generate(rng)) ++apps[j.app];
  EXPECT_EQ(apps.size(), 3u);
  for (const auto& [k, c] : apps) EXPECT_GT(c, 30);
}

TEST(Msd, DeterministicGivenSeed) {
  MsdGenerator gen(MsdConfig{});
  Rng r1(7), r2(7);
  const auto a = gen.generate(r1);
  const auto b = gen.generate(r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].app, b[i].app);
    EXPECT_DOUBLE_EQ(a[i].input_mb, b[i].input_mb);
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
  }
}

TEST(Arrival, PoissonRateIsRespected) {
  PoissonArrivals p(30.0);  // tasks per minute
  Rng rng(8);
  const auto times = p.arrivals(3600.0, rng);
  EXPECT_NEAR(static_cast<double>(times.size()), 1800.0, 150.0);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i], times[i - 1]);
    EXPECT_LT(times[i], 3600.0);
  }
}

TEST(Arrival, UniformIsEvenlySpaced) {
  UniformArrivals u(6.0);  // every 10 s
  Rng rng(9);
  const auto times = u.arrivals(60.0, rng);
  ASSERT_EQ(times.size(), 6u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_DOUBLE_EQ(times[i], 10.0 * static_cast<double>(i));
  }
}

TEST(Arrival, RejectsBadInput) {
  EXPECT_THROW(PoissonArrivals(0.0), PreconditionError);
  EXPECT_THROW(UniformArrivals(-1.0), PreconditionError);
  PoissonArrivals p(1.0);
  Rng rng(10);
  EXPECT_THROW(p.arrivals(0.0, rng), PreconditionError);
}

}  // namespace
}  // namespace eant::workload
