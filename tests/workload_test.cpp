// Unit tests for the workload module: PUMA application profiles (Fig. 1(d)
// characterisation), the MSD generator (Table III), arrival processes.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "workload/apps.h"
#include "workload/arrival.h"
#include "workload/job_spec.h"
#include "workload/msd.h"

namespace eant::workload {
namespace {

TEST(Apps, NamesAndLookup) {
  EXPECT_EQ(app_name(AppKind::kWordcount), "Wordcount");
  EXPECT_EQ(app_name(AppKind::kGrep), "Grep");
  EXPECT_EQ(app_name(AppKind::kTerasort), "Terasort");
  EXPECT_EQ(all_apps().size(), 3u);
  for (AppKind k : all_apps()) {
    EXPECT_EQ(profile_for(k).kind, k);
    EXPECT_EQ(profile_for(k).name, app_name(k));
  }
}

TEST(Apps, WordcountIsCpuBoundOthersAreIoBound) {
  // Paper Fig. 1(d): Wordcount is map/CPU-intensive; Grep and Terasort are
  // IO-intensive.  Use a 40 MB/s reference disk (desktop-class).
  const double wc = map_cpu_fraction(profile_for(AppKind::kWordcount), 40.0);
  const double gr = map_cpu_fraction(profile_for(AppKind::kGrep), 40.0);
  const double ts = map_cpu_fraction(profile_for(AppKind::kTerasort), 40.0);
  EXPECT_GT(wc, 0.8);
  EXPECT_LT(gr, 0.75);
  EXPECT_LT(ts, 0.75);
  EXPECT_GT(wc, gr);
  EXPECT_GT(wc, ts);
}

TEST(Apps, TerasortShufflesItsWholeInput) {
  EXPECT_DOUBLE_EQ(profile_for(AppKind::kTerasort).map_output_ratio, 1.0);
  EXPECT_LT(profile_for(AppKind::kWordcount).map_output_ratio, 0.2);
}

TEST(Apps, ProfilesArePositive) {
  for (AppKind k : all_apps()) {
    const AppProfile& p = profile_for(k);
    EXPECT_GT(p.map_cpu_s_per_mb, 0.0);
    EXPECT_GT(p.map_io_mb_per_mb, 0.0);
    EXPECT_GT(p.map_cpu_demand, 0.0);
    EXPECT_GT(p.map_output_ratio, 0.0);
    EXPECT_GT(p.reduce_cpu_s_per_mb, 0.0);
    EXPECT_GT(p.reduce_io_mb_per_mb, 0.0);
    EXPECT_GT(p.reduce_cpu_demand, 0.0);
  }
}

TEST(JobSpec, DisplayAndClassKey) {
  JobSpec s;
  s.app = AppKind::kGrep;
  s.size_class = SizeClass::kMedium;
  EXPECT_EQ(s.display_name(), "Grep-M");
  EXPECT_EQ(s.class_key(), "Grep-M");
  EXPECT_EQ(size_class_suffix(SizeClass::kSmall), "S");
  EXPECT_EQ(size_class_suffix(SizeClass::kLarge), "L");
}

TEST(Msd, GeneratesConfiguredJobCount) {
  MsdGenerator gen(MsdConfig{});
  Rng rng(1);
  const auto jobs = gen.generate(rng);
  EXPECT_EQ(jobs.size(), 87u);
}

TEST(Msd, ClassSharesFollowTableThree) {
  MsdConfig cfg;
  cfg.num_jobs = 7000;
  MsdGenerator gen(cfg);
  Rng rng(2);
  const auto jobs = gen.generate(rng);
  std::map<SizeClass, int> counts;
  for (const auto& j : jobs) ++counts[j.size_class];
  // Renormalised Table III shares: 4/7, 2/7, 1/7.
  EXPECT_NEAR(counts[SizeClass::kSmall] / 7000.0, 4.0 / 7.0, 0.03);
  EXPECT_NEAR(counts[SizeClass::kMedium] / 7000.0, 2.0 / 7.0, 0.03);
  EXPECT_NEAR(counts[SizeClass::kLarge] / 7000.0, 1.0 / 7.0, 0.03);
}

TEST(Msd, InputSizesRespectScaledClassRanges) {
  MsdConfig cfg;
  cfg.num_jobs = 500;
  MsdGenerator gen(cfg);
  Rng rng(3);
  for (const auto& j : gen.generate(rng)) {
    double lo = 0, hi = 0;
    switch (j.size_class) {
      case SizeClass::kSmall:
        lo = cfg.small_min_mb;
        hi = cfg.small_max_mb;
        break;
      case SizeClass::kMedium:
        lo = cfg.medium_min_mb;
        hi = cfg.medium_max_mb;
        break;
      case SizeClass::kLarge:
        lo = cfg.large_min_mb;
        hi = cfg.large_max_mb;
        break;
    }
    EXPECT_GE(j.input_mb, std::max(kHdfsBlockMb, lo * cfg.input_scale) - 1e-9);
    EXPECT_LE(j.input_mb, hi * cfg.input_scale + 1e-9);
    EXPECT_GE(j.num_reduces, 1);
  }
}

TEST(Msd, LargeJobsAreLargerThanSmallJobs) {
  MsdConfig cfg;
  cfg.num_jobs = 2000;
  MsdGenerator gen(cfg);
  Rng rng(4);
  double small_max = 0.0, large_min = 1e18;
  for (const auto& j : gen.generate(rng)) {
    if (j.size_class == SizeClass::kSmall) {
      small_max = std::max(small_max, j.input_mb);
    }
    if (j.size_class == SizeClass::kLarge) {
      large_min = std::min(large_min, j.input_mb);
    }
  }
  EXPECT_LT(small_max, large_min * 1.01);  // class ranges are disjoint
}

TEST(Msd, SubmitTimesAreSortedPoisson) {
  MsdConfig cfg;
  cfg.num_jobs = 300;
  cfg.mean_interarrival = 60.0;
  MsdGenerator gen(cfg);
  Rng rng(5);
  const auto jobs = gen.generate(rng);
  EXPECT_DOUBLE_EQ(jobs.front().submit_time, 0.0);
  double prev = -1.0;
  double total_gap = 0.0;
  for (const auto& j : jobs) {
    EXPECT_GE(j.submit_time, prev);
    prev = j.submit_time;
  }
  total_gap = jobs.back().submit_time / (jobs.size() - 1);
  EXPECT_NEAR(total_gap, 60.0, 12.0);
}

TEST(Msd, UsesAllThreeApplications) {
  MsdConfig cfg;
  cfg.num_jobs = 200;
  MsdGenerator gen(cfg);
  Rng rng(6);
  std::map<AppKind, int> apps;
  for (const auto& j : gen.generate(rng)) ++apps[j.app];
  EXPECT_EQ(apps.size(), 3u);
  for (const auto& [k, c] : apps) EXPECT_GT(c, 30);
}

TEST(Msd, DeterministicGivenSeed) {
  MsdGenerator gen(MsdConfig{});
  Rng r1(7), r2(7);
  const auto a = gen.generate(r1);
  const auto b = gen.generate(r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].app, b[i].app);
    EXPECT_DOUBLE_EQ(a[i].input_mb, b[i].input_mb);
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
  }
}

TEST(Arrival, PoissonRateIsRespected) {
  PoissonArrivals p(30.0);  // tasks per minute
  Rng rng(8);
  const auto times = p.arrivals(3600.0, rng);
  EXPECT_NEAR(static_cast<double>(times.size()), 1800.0, 150.0);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i], times[i - 1]);
    EXPECT_LT(times[i], 3600.0);
  }
}

TEST(Arrival, UniformIsEvenlySpaced) {
  UniformArrivals u(6.0);  // every 10 s
  Rng rng(9);
  const auto times = u.arrivals(60.0, rng);
  ASSERT_EQ(times.size(), 6u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_DOUBLE_EQ(times[i], 10.0 * static_cast<double>(i));
  }
}

TEST(Arrival, RejectsBadInput) {
  EXPECT_THROW(PoissonArrivals(0.0), PreconditionError);
  EXPECT_THROW(UniformArrivals(-1.0), PreconditionError);
  PoissonArrivals p(1.0);
  Rng rng(10);
  EXPECT_THROW(p.arrivals(0.0, rng), PreconditionError);
}

TEST(Arrival, PoissonDeterministicGivenSeed) {
  const PoissonArrivals p(12.0);
  Rng r1(11), r2(11), r3(12);
  const auto a = p.arrivals(7200.0, r1);
  const auto b = p.arrivals(7200.0, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  const auto c = p.arrivals(7200.0, r3);
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i] < c[i] || c[i] < a[i];
  }
  EXPECT_TRUE(differs);
}

TEST(Arrival, DiurnalMeanRateMatchesBaseOverFullPeriods) {
  // The sinusoid integrates to zero over whole periods, so the expected
  // count over exactly two days is base * minutes.
  const DiurnalArrivals d(6.0, 0.8);
  Rng rng(13);
  const Seconds horizon = 2.0 * 86400.0;
  const auto times = d.arrivals(horizon, rng);
  const double expected = 6.0 * horizon / 60.0;
  EXPECT_NEAR(static_cast<double>(times.size()), expected, 0.1 * expected);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_GE(times[i], 0.0);
    EXPECT_LT(times[i], horizon);
    if (i > 0) {
      EXPECT_GE(times[i], times[i - 1]);
    }
  }
}

TEST(Arrival, DiurnalPeakOutweighsTrough) {
  // rate(t) peaks at period/4 and bottoms at 3*period/4: a window around
  // the peak must collect several times the arrivals of the trough window.
  const DiurnalArrivals d(6.0, 0.8);
  EXPECT_GT(d.rate_at(86400.0 / 4.0), d.rate_at(3.0 * 86400.0 / 4.0));
  Rng rng(14);
  const auto times = d.arrivals(86400.0, rng);
  const auto count_in = [&](Seconds lo, Seconds hi) {
    std::size_t n = 0;
    for (const Seconds t : times) {
      if (lo <= t && t < hi) ++n;
    }
    return n;
  };
  const std::size_t peak = count_in(86400.0 / 4.0 - 3600.0,
                                    86400.0 / 4.0 + 3600.0);
  const std::size_t trough = count_in(3.0 * 86400.0 / 4.0 - 3600.0,
                                      3.0 * 86400.0 / 4.0 + 3600.0);
  EXPECT_GT(peak, 3 * trough);
}

TEST(Arrival, DiurnalZeroAmplitudeDegeneratesToFlatPoisson) {
  const DiurnalArrivals flat(10.0, 0.0);
  EXPECT_DOUBLE_EQ(flat.rate_at(0.0), flat.rate_at(86400.0 / 4.0));
  Rng rng(15);
  const auto times = flat.arrivals(6.0 * 3600.0, rng);
  const double expected = 10.0 * 6.0 * 60.0;
  EXPECT_NEAR(static_cast<double>(times.size()), expected, 0.15 * expected);
}

TEST(Arrival, BurstyMeanRateMatchesTwoStateAverage) {
  const BurstyArrivals b(6.0, 4.0, 1800.0, 600.0);
  // Long-run mean: (calm*base + burst*mult*base) / (calm + burst).
  EXPECT_NEAR(b.mean_rate_per_minute(),
              (1800.0 * 6.0 + 600.0 * 24.0) / 2400.0, 1e-9);
  Rng rng(16);
  const Seconds horizon = 4.0 * 86400.0;
  const auto times = b.arrivals(horizon, rng);
  const double expected = b.mean_rate_per_minute() * horizon / 60.0;
  EXPECT_NEAR(static_cast<double>(times.size()), expected, 0.15 * expected);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_GE(times[i], 0.0);
    EXPECT_LT(times[i], horizon);
    if (i > 0) {
      EXPECT_GE(times[i], times[i - 1]);
    }
  }
}

TEST(Arrival, BurstyIsBurstierThanPoisson) {
  // Dispersion test: per-10-minute bin counts of an MMPP with a 6x burst
  // state must have a variance-to-mean ratio well above the Poisson's ~1.
  const auto dispersion = [](const std::vector<Seconds>& times,
                             Seconds horizon) {
    const Seconds bin = 600.0;
    std::vector<double> counts(static_cast<std::size_t>(horizon / bin), 0.0);
    for (const Seconds t : times) {
      counts[static_cast<std::size_t>(t / bin)] += 1.0;
    }
    return variance_of(counts) / mean_of(counts);
  };
  const Seconds horizon = 2.0 * 86400.0;
  Rng r1(17), r2(18);
  const auto bursty =
      BurstyArrivals(6.0, 6.0, 1800.0, 600.0).arrivals(horizon, r1);
  const auto flat = PoissonArrivals(6.0).arrivals(horizon, r2);
  EXPECT_GT(dispersion(bursty, horizon), 2.0 * dispersion(flat, horizon));
}

TEST(Arrival, ProfilesDeterministicGivenSeed) {
  const DiurnalArrivals d(6.0, 0.8);
  const BurstyArrivals b(6.0, 4.0);
  Rng d1(19), d2(19), b1(20), b2(20);
  const auto da = d.arrivals(86400.0, d1);
  const auto db = d.arrivals(86400.0, d2);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) EXPECT_DOUBLE_EQ(da[i], db[i]);
  const auto ba = b.arrivals(86400.0, b1);
  const auto bb = b.arrivals(86400.0, b2);
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); ++i) EXPECT_DOUBLE_EQ(ba[i], bb[i]);
}

TEST(Arrival, ProfilesRejectBadInput) {
  EXPECT_THROW(DiurnalArrivals(0.0, 0.5), PreconditionError);
  EXPECT_THROW(DiurnalArrivals(6.0, -0.1), PreconditionError);
  EXPECT_THROW(DiurnalArrivals(6.0, 1.0), PreconditionError);
  EXPECT_THROW(DiurnalArrivals(6.0, 0.5, 0.0), PreconditionError);
  EXPECT_THROW(BurstyArrivals(0.0, 4.0), PreconditionError);
  EXPECT_THROW(BurstyArrivals(6.0, 0.5), PreconditionError);
  EXPECT_THROW(BurstyArrivals(6.0, 4.0, 0.0, 300.0), PreconditionError);
  DiurnalArrivals d(6.0, 0.5);
  BurstyArrivals b(6.0, 4.0);
  Rng rng(21);
  EXPECT_THROW(d.arrivals(-1.0, rng), PreconditionError);
  EXPECT_THROW(b.arrivals(0.0, rng), PreconditionError);
}

}  // namespace
}  // namespace eant::workload
