// Unit tests for the task-level energy model (Eq. 2) and the least-squares
// power-parameter calibration, including a Fig. 4-style end-to-end accuracy
// check: sum of estimated task energies vs metered machine energy.

#include <gtest/gtest.h>

#include "cluster/catalog.h"
#include "cluster/cluster.h"
#include "cluster/power_meter.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/energy_model.h"
#include "exp/builders.h"
#include "exp/runner.h"

namespace eant::core {
namespace {

TEST(Calibrate, RecoversTruePowerModel) {
  // Samples straight off a noiseless P = 42 + 110 u line.
  std::vector<CalibrationSample> samples;
  for (int i = 0; i <= 20; ++i) {
    const double u = i / 20.0;
    samples.push_back({u, 42.0 + 110.0 * u});
  }
  const PowerParams p = calibrate(samples, 6);
  EXPECT_NEAR(p.idle, 42.0, 1e-9);
  EXPECT_NEAR(p.alpha, 110.0, 1e-9);
  EXPECT_EQ(p.slots, 6);
}

TEST(Calibrate, ToleratesMeteringNoise) {
  Rng rng(1);
  std::vector<CalibrationSample> samples;
  for (int i = 0; i < 500; ++i) {
    const double u = rng.uniform(0.0, 1.0);
    samples.push_back({u, 95.0 + 60.0 * u + rng.normal(0.0, 2.0)});
  }
  const PowerParams p = calibrate(samples, 6);
  EXPECT_NEAR(p.idle, 95.0, 1.5);
  EXPECT_NEAR(p.alpha, 60.0, 3.0);
}

TEST(Calibrate, RejectsDegenerateInput) {
  EXPECT_THROW(calibrate({{0.5, 80.0}}, 6), PreconditionError);
  EXPECT_THROW(calibrate({{0.5, 80.0}, {0.5, 81.0}}, 6), PreconditionError);
  EXPECT_THROW(calibrate({{0.0, 50.0}, {1.0, 150.0}}, 0), PreconditionError);
}

TEST(EnergyModel, FromClusterMatchesTypes) {
  sim::Simulator sim;
  cluster::Cluster c(sim);
  c.add_machines(cluster::catalog::desktop(), 1);
  c.add_machines(cluster::catalog::atom(), 1);
  const EnergyModel model = EnergyModel::from_cluster(c);
  EXPECT_EQ(model.num_machines(), 2u);
  EXPECT_DOUBLE_EQ(model.params(0).idle,
                   cluster::catalog::desktop().idle_power);
  EXPECT_DOUBLE_EQ(model.params(1).alpha, cluster::catalog::atom().alpha);
  EXPECT_EQ(model.params(0).slots, 6);
}

TEST(EnergyModel, EstimateImplementsEquationTwo) {
  EnergyModel model;
  model.set_params(0, PowerParams{60.0, 90.0, 6});
  mr::TaskReport r;
  r.machine = 0;
  // Two windows: 3 s at u=0.2 and 2 s at u=0.5.
  r.samples = {{3.0, 0.2}, {2.0, 0.5}};
  // E = (60/6 + 90*0.2)*3 + (60/6 + 90*0.5)*2 = 28*3 + 55*2 = 194 J.
  EXPECT_DOUBLE_EQ(model.estimate(r), 194.0);
}

TEST(EnergyModel, EmptySamplesGiveZeroEnergy) {
  EnergyModel model;
  model.set_params(0, PowerParams{60.0, 90.0, 6});
  mr::TaskReport r;
  r.machine = 0;
  EXPECT_DOUBLE_EQ(model.estimate(r), 0.0);
}

TEST(EnergyModel, UnknownMachineRejected) {
  EnergyModel model;
  mr::TaskReport r;
  r.machine = 3;
  EXPECT_THROW(model.estimate(r), PreconditionError);
}

TEST(EnergyModel, RejectsBadParams) {
  EnergyModel model;
  EXPECT_THROW(model.set_params(0, PowerParams{-1.0, 10.0, 6}),
               PreconditionError);
  EXPECT_THROW(model.set_params(0, PowerParams{10.0, 10.0, 0}),
               PreconditionError);
}

// --- Fig. 4-style accuracy -----------------------------------------------------
//
// Run one job per application on a single machine, sum the Eq. 2 estimates
// of its tasks and compare against the machine's metered energy over the
// busy period.  With the paper's noise level the per-task NRMSE lands in the
// paper's reported 8-12% band; the totals agree within ~20%.

struct AccuracyResult {
  double total_measured = 0.0;
  double total_estimated = 0.0;
  double per_task_nrmse = 0.0;
};

AccuracyResult run_accuracy(const cluster::MachineType& type,
                            workload::AppKind app, std::uint64_t seed) {
  exp::RunConfig config;
  config.seed = seed;
  config.noise = mr::NoiseConfig::typical();
  exp::Run run(exp::homogeneous(type, 1), exp::SchedulerKind::kFifo, config);

  const EnergyModel model = EnergyModel::from_cluster(run.cluster());
  std::vector<double> estimated;
  run.job_tracker().set_report_listener([&](const mr::TaskReport& r) {
    estimated.push_back(model.estimate(r));
  });
  run.submit({exp::single_job(app, 64.0 * 24, 2)});
  run.execute();

  AccuracyResult out;
  for (double e : estimated) out.total_estimated += e;
  // Measured total: machine energy minus the idle floor outside task windows
  // is hard to carve out exactly, so compare against the full busy-period
  // energy of the machine (the paper does the same: per-job machine energy).
  out.total_measured = run.cluster().machine(0).energy();
  // Per-task deviation proxy: re-estimate with exact (noise-free) sample
  // values is not observable, so use dispersion of estimates vs their mean
  // scaled into an NRMSE-like number in tests below instead.
  return out;
}

TEST(EnergyModelAccuracy, EstimateTracksMeteredEnergyPerApp) {
  for (workload::AppKind app : workload::all_apps()) {
    const auto r = run_accuracy(cluster::catalog::desktop(), app, 7);
    EXPECT_GT(r.total_estimated, 0.0);
    // The estimate only attributes idle power to occupied slots, so it is
    // a lower bound that should still capture most of the machine energy.
    EXPECT_LT(r.total_estimated, r.total_measured * 1.05);
    EXPECT_GT(r.total_estimated, r.total_measured * 0.4);
  }
}

TEST(EnergyModelAccuracy, XeonServerToo) {
  const auto r =
      run_accuracy(cluster::catalog::xeon_e5(), workload::AppKind::kGrep, 9);
  EXPECT_GT(r.total_estimated, 0.0);
  EXPECT_LT(r.total_estimated, r.total_measured * 1.05);
}

TEST(EnergyModelAccuracy, NoiselessFullyLoadedMachineIsNearExact) {
  // With zero noise and all slots busy the Eq. 2 estimate accounts for the
  // whole machine: idle is fully apportioned and utilisation is exact.
  exp::RunConfig config;
  config.seed = 3;
  config.noise = mr::NoiseConfig::none();
  cluster::MachineType type = cluster::catalog::desktop();
  type.map_slots = 2;  // few slots so they stay saturated
  type.reduce_slots = 1;
  exp::Run run(exp::homogeneous(type, 1), exp::SchedulerKind::kFifo, config);
  const EnergyModel model = EnergyModel::from_cluster(run.cluster());
  double estimated = 0.0;
  Seconds first_start = -1.0, last_finish = 0.0;
  run.job_tracker().set_report_listener([&](const mr::TaskReport& r) {
    estimated += model.estimate(r);
    if (first_start < 0.0) first_start = r.start;
    last_finish = std::max(last_finish, r.finish);
  });
  run.submit({exp::single_job(workload::AppKind::kWordcount, 64.0 * 12, 1)});
  run.execute();

  // Compare over the busy window only; the machine also idles before the
  // first heartbeat and between waves.
  const double busy = last_finish - first_start;
  EXPECT_GT(busy, 0.0);
  const double measured = run.cluster().machine(0).energy();
  // The estimate must stay within the (idle-only, full-power) envelope.
  const auto& t = run.cluster().machine(0).type();
  EXPECT_GT(estimated, busy * t.idle_power * 0.4);
  EXPECT_LT(estimated, measured);
}

}  // namespace
}  // namespace eant::core
