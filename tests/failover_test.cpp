// Control-plane fault-tolerance suite: scripted/stochastic master faults in
// the FaultInjector, epoch fencing of stale heartbeats, the re-registration
// storm, checkpointed orphan resolution (commit from coverage vs amnesia
// requeue), blacklist-persists/quarantine-resets semantics across failover,
// NameNode snapshot/restore, and the digest-neutrality of the failover
// machinery on fault-free runs.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "exp/builders.h"
#include "exp/runner.h"
#include "sched/capacity.h"
#include "hdfs/namenode.h"
#include "mapreduce/job_tracker.h"
#include "net/topology.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "workload/job_spec.h"

namespace eant {
namespace {

using cluster::MachineId;

// A batch big enough that attempts are finishing continuously for several
// minutes — the raw material for fencing and orphan resolution.
std::vector<workload::JobSpec> busy_workload(int jobs = 3) {
  return exp::job_batch(workload::AppKind::kTerasort, 3000.0, 8, jobs);
}

// --- FaultPlan / FaultInjector ----------------------------------------------

TEST(MasterFaultPlan, HelpersBuildPairedTransitions) {
  sim::FaultPlan plan;
  EXPECT_FALSE(plan.has_master_faults());
  plan.crash_jobtracker_for(100.0, 30.0).crash_namenode_for(200.0, 40.0);
  EXPECT_TRUE(plan.has_master_faults());
  EXPECT_TRUE(plan.enabled());
  ASSERT_EQ(plan.master_events.size(), 4u);
  EXPECT_EQ(plan.master_events[0].target,
            sim::MasterFaultEvent::Target::kJobTracker);
  EXPECT_EQ(plan.master_events[0].kind, sim::MasterFaultEvent::Kind::kCrash);
  EXPECT_DOUBLE_EQ(plan.master_events[0].time, 100.0);
  EXPECT_EQ(plan.master_events[1].kind, sim::MasterFaultEvent::Kind::kRecover);
  EXPECT_DOUBLE_EQ(plan.master_events[1].time, 130.0);
  EXPECT_EQ(plan.master_events[2].target,
            sim::MasterFaultEvent::Target::kNameNode);
  EXPECT_DOUBLE_EQ(plan.master_events[3].time, 240.0);

  sim::FaultPlan stochastic;
  stochastic.jt_mtbf = 1000.0;
  EXPECT_TRUE(stochastic.has_master_faults());
  EXPECT_TRUE(stochastic.enabled());
}

TEST(MasterFaultInjector, ScriptedMasterTransitionsFireInOrder) {
  sim::Simulator sim;
  sim::FaultPlan plan;
  plan.crash_jobtracker_for(10.0, 5.0).crash_namenode_for(12.0, 10.0);
  sim::FaultInjector inj(sim, plan, Rng(7), 4);
  inj.set_handlers([](std::size_t) {}, [](std::size_t) {});
  std::vector<std::pair<bool, bool>> seen;  // (is_jobtracker, up)
  inj.set_master_handler([&](sim::MasterFaultEvent::Target t, bool up) {
    seen.push_back({t == sim::MasterFaultEvent::Target::kJobTracker, up});
  });
  inj.start();
  EXPECT_TRUE(inj.jobtracker_up());
  EXPECT_TRUE(inj.namenode_up());
  sim.run();
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], (std::pair<bool, bool>{true, false}));   // JT down @10
  EXPECT_EQ(seen[1], (std::pair<bool, bool>{false, false}));  // NN down @12
  EXPECT_EQ(seen[2], (std::pair<bool, bool>{true, true}));    // JT up @15
  EXPECT_EQ(seen[3], (std::pair<bool, bool>{false, true}));   // NN up @22
  EXPECT_TRUE(inj.jobtracker_up());
  EXPECT_TRUE(inj.namenode_up());
  EXPECT_EQ(inj.master_crashes(), 2u);
  EXPECT_EQ(inj.master_log().size(), 4u);
}

TEST(MasterFaultInjector, StochasticMasterCrashesAlternateAndReproduce) {
  auto log_for = [](std::uint64_t seed) {
    sim::Simulator sim;
    sim::FaultPlan plan;
    plan.jt_mtbf = 200.0;
    plan.jt_mttr = 50.0;
    plan.nn_mtbf = 400.0;
    plan.nn_mttr = 30.0;
    sim::FaultInjector inj(sim, plan, Rng(seed), 4);
    inj.set_handlers([](std::size_t) {}, [](std::size_t) {});
    inj.set_master_handler([](sim::MasterFaultEvent::Target, bool) {});
    inj.start();
    while (sim.now() < 2000.0) {
      if (!sim.step()) break;
    }
    return inj.master_log();
  };

  const auto log = log_for(3);
  ASSERT_GE(log.size(), 4u);
  // Per target the transitions strictly alternate down/up.
  bool jt_up = true, nn_up = true;
  for (const auto& t : log) {
    bool& up = t.target == sim::MasterFaultEvent::Target::kJobTracker ? jt_up
                                                                      : nn_up;
    EXPECT_NE(t.up, up) << "redundant master transition";
    up = t.up;
  }
  // Same seed, same schedule; different seed, different schedule.
  const auto again = log_for(3);
  ASSERT_EQ(again.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].time, log[i].time);
    EXPECT_EQ(again[i].target, log[i].target);
  }
  const auto other = log_for(4);
  bool differs = other.size() != log.size();
  for (std::size_t i = 0; !differs && i < log.size(); ++i) {
    differs = other[i].time != log[i].time;
  }
  EXPECT_TRUE(differs);
}

// --- epoch fencing -----------------------------------------------------------

TEST(Failover, StaleHeartbeatsAreFencedWhileMasterDown) {
  exp::RunConfig cfg;
  cfg.seed = 5;
  cfg.audit.enabled = true;
  cfg.job_tracker.reregistration_window = 2.0;
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(busy_workload());

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  ASSERT_TRUE(jt.master_up());
  const std::uint64_t epoch_before = jt.master_epoch();

  // Let the run warm up, then pull the master out from between steps.
  while (sim.now() < 60.0) ASSERT_TRUE(sim.step());
  jt.crash_master();
  EXPECT_FALSE(jt.master_up());
  const Seconds down_until = sim.now() + 45.0;
  while (sim.now() < down_until) ASSERT_TRUE(sim.step());
  // Every heartbeat of the outage was fenced, none assigned work.
  EXPECT_GT(jt.fenced_heartbeats(), 0u);
  const std::size_t fenced_during_outage = jt.fenced_heartbeats();

  jt.recover_master();
  EXPECT_TRUE(jt.master_up());
  EXPECT_EQ(jt.master_epoch(), epoch_before + 1);

  // Heartbeats arriving before a tracker's re-registration gate still fence;
  // once the storm drains, fencing stops for good in a single-crash run.
  while (!jt.all_done()) ASSERT_TRUE(sim.step());
  const std::size_t fenced_total = jt.fenced_heartbeats();
  EXPECT_GE(fenced_total, fenced_during_outage);
  EXPECT_EQ(jt.jobs_failed(), 0u);
  EXPECT_EQ(jt.master_crashes(), 1u);

  const exp::RunMetrics m = run.metrics();
  EXPECT_TRUE(m.audit.clean());
  EXPECT_EQ(m.fenced_heartbeats, fenced_total);
  EXPECT_EQ(m.master_crashes, 1u);
}

// --- orphan resolution -------------------------------------------------------

// Runs a scripted mid-run JobTracker outage and returns the JobTracker-level
// failover counters.
exp::RunMetrics run_jt_outage(Seconds checkpoint_interval,
                              Seconds reregistration_window,
                              std::uint64_t* orphan_digest = nullptr) {
  exp::RunConfig cfg;
  cfg.seed = 9;
  cfg.audit.enabled = true;
  cfg.job_tracker.speculative_execution = false;
  cfg.job_tracker.checkpoint_interval = checkpoint_interval;
  cfg.job_tracker.checkpoint_write_cost = 1.0;
  cfg.job_tracker.reregistration_window = reregistration_window;
  cfg.faults.crash_jobtracker_for(60.0, 90.0);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(busy_workload());
  run.execute();
  if (orphan_digest != nullptr) {
    *orphan_digest = run.job_tracker().orphan_resolution_digest();
  }
  return run.metrics();
}

TEST(Failover, CheckpointCoverageCommitsOrphansAmnesiaRequeues) {
  // With a live checkpoint, attempts that launched inside coverage commit
  // their fenced completions on replay — the work counts once, nothing
  // re-runs.
  const exp::RunMetrics covered = run_jt_outage(20.0, 2.0);
  EXPECT_EQ(covered.jobs_failed, 0u);
  EXPECT_GT(covered.checkpoints_written, 0u);
  EXPECT_EQ(covered.checkpoint_replays, 1u);
  EXPECT_GT(covered.fenced_completions, 0u);
  EXPECT_GT(covered.orphans_committed, 0u);
  EXPECT_TRUE(covered.audit.clean());

  // checkpoint_interval = 0 is full amnesia: the restarted master has no
  // attempt table, so every fenced report is discarded and requeued.
  const exp::RunMetrics amnesia = run_jt_outage(0.0, 2.0);
  EXPECT_EQ(amnesia.jobs_failed, 0u);
  EXPECT_EQ(amnesia.checkpoints_written, 0u);
  EXPECT_EQ(amnesia.checkpoint_replays, 0u);
  EXPECT_GT(amnesia.fenced_completions, 0u);
  EXPECT_EQ(amnesia.orphans_committed, 0u);
  EXPECT_GT(amnesia.orphans_requeued, 0u);
  EXPECT_TRUE(amnesia.audit.clean());
}

TEST(Failover, ReregistrationStormOrderIndependentResolution) {
  // The same outage resolved through a fast storm and a slow storm must
  // reach identical per-task orphan outcomes: the digest covers WHAT was
  // resolved and HOW, not the re-registration schedule.  (Speculation is off
  // in run_jt_outage — a speculative twin racing a gate could legitimately
  // flip commit/requeue.)
  std::uint64_t fast = 0, slow = 0;
  const exp::RunMetrics a = run_jt_outage(20.0, 1.0, &fast);
  const exp::RunMetrics b = run_jt_outage(20.0, 30.0, &slow);
  EXPECT_GT(a.orphans_committed + a.orphans_requeued, 0u);
  EXPECT_NE(fast, 0u);
  EXPECT_EQ(fast, slow);
  EXPECT_EQ(a.jobs_failed, 0u);
  EXPECT_EQ(b.jobs_failed, 0u);
}

// --- suspension state across failover ----------------------------------------

TEST(Failover, BlacklistPersistsAcrossFailover) {
  exp::RunConfig cfg;
  cfg.seed = 3;
  cfg.job_tracker.blacklist_threshold = 2;
  cfg.job_tracker.blacklist_duration = 1e6;
  cfg.job_tracker.blacklist_decay_window = 0.0;  // permanent for the test
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(busy_workload());

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  const MachineId victim = 2;
  // Every attempt on the victim dies halfway — it blacklists quickly.
  jt.set_attempt_fault_hook(
      [&](const mr::TaskSpec&, MachineId m) -> std::optional<double> {
        if (m == victim && !jt.tracker_blacklisted(victim)) return 0.5;
        return std::nullopt;
      });

  while (!jt.tracker_blacklisted(victim)) {
    ASSERT_TRUE(sim.step());
    ASSERT_LT(sim.now(), 3600.0) << "victim never got blacklisted";
  }

  jt.crash_master();
  const Seconds down_until = sim.now() + 30.0;
  while (sim.now() < down_until) ASSERT_TRUE(sim.step());
  jt.recover_master();

  // Blacklisting records charged faults, not the old master's opinion: it
  // survives the failover and the victim stays unschedulable.
  EXPECT_TRUE(jt.tracker_blacklisted(victim));
  EXPECT_FALSE(jt.tracker_available(victim));

  while (!jt.all_done()) ASSERT_TRUE(sim.step());
  EXPECT_EQ(jt.jobs_failed(), 0u);
}

TEST(Failover, QuarantineResetsAcrossFailover) {
  const MachineId victim = 1;
  exp::RunConfig cfg;
  cfg.seed = 5;
  cfg.job_tracker.health_min_samples = 3;
  cfg.faults.slow_for(victim, 30.0, 500.0, 0.15, 0.5);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(busy_workload());

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  while (!jt.tracker_quarantined(victim)) {
    ASSERT_TRUE(sim.step());
    ASSERT_LT(sim.now(), 3600.0) << "limping victim never got quarantined";
  }

  jt.crash_master();
  const Seconds down_until = sim.now() + 30.0;
  while (sim.now() < down_until) {
    if (!sim.step()) break;
  }
  jt.recover_master();

  // Health samples were the dead master's observations: the new master
  // starts from a clean slate and must re-convict the limper.
  EXPECT_FALSE(jt.tracker_quarantined(victim));
  EXPECT_DOUBLE_EQ(jt.node_health(victim), 1.0);

  while (!jt.all_done()) ASSERT_TRUE(sim.step());
  EXPECT_EQ(jt.jobs_failed(), 0u);
}

// --- digest neutrality -------------------------------------------------------

TEST(Failover, FaultFreeDigestImmuneToFailoverKnobs) {
  // With checkpointing disabled (the default) the failover machinery
  // schedules no events, fences nothing and consults no RNG: no knob setting
  // may move a single bit of a fault-free run's digest.
  auto digest = [](Seconds write_cost, Seconds reregistration_window) {
    exp::RunConfig cfg;
    cfg.seed = 11;
    cfg.audit.enabled = true;
    cfg.job_tracker.checkpoint_write_cost = write_cost;
    cfg.job_tracker.reregistration_window = reregistration_window;
    exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
    run.submit(busy_workload(2));
    run.execute();
    return run.metrics().determinism_digest;
  };

  const auto defaults = digest(5.0, 30.0);
  EXPECT_EQ(defaults, digest(123.0, 1.0));
  EXPECT_EQ(defaults, digest(0.0, 600.0));
}

// --- NameNode failover -------------------------------------------------------

TEST(NameNodeFailover, SnapshotRestoreRoundTrip) {
  hdfs::NameNode nn(Rng(17), 8, 3, {0, 0, 0, 0, 1, 1, 1, 1});
  const auto blocks_a = nn.create_file(500.0);
  const auto blocks_b = nn.create_file(300.0);
  ASSERT_FALSE(blocks_a.empty());

  const hdfs::NameNode::Snapshot snap = nn.snapshot();
  const auto locations_before = nn.locations(blocks_a[0]);
  const auto per_node_before = nn.blocks_per_node();

  // Mutate heavily: kill a holder, drain one work item, kill another node.
  nn.mark_datanode_dead(locations_before[0]);
  EXPECT_GT(nn.under_replicated_count(), 0u);
  if (const auto work = nn.next_rereplication()) {
    nn.add_replica(work->block, work->target);
  }
  nn.mark_datanode_dead(locations_before[1]);

  nn.restore(snap);
  EXPECT_EQ(nn.locations(blocks_a[0]), locations_before);
  EXPECT_EQ(nn.blocks_per_node(), per_node_before);
  EXPECT_EQ(nn.under_replicated_count(), 0u);
  EXPECT_TRUE(nn.lost_blocks().empty());
  EXPECT_FALSE(nn.mutated());
  for (MachineId m = 0; m < 8; ++m) EXPECT_TRUE(nn.datanode_alive(m));

  // rebuild_under_replication is idempotent on a healthy map.
  nn.rebuild_under_replication();
  EXPECT_EQ(nn.under_replicated_count(), 0u);
}

TEST(NameNodeFailover, DatanodeDeathDuringOutageReplaysOnRecovery) {
  // A datanode dies while the NameNode is down: the mark buffers, replays at
  // recovery against the restored block map, and re-replication restores
  // every block — no loss goes unrecorded, no block falls through.
  exp::RunConfig cfg;
  cfg.seed = 7;
  cfg.audit.enabled = true;
  cfg.topology = net::TopologySpec::oversubscribed();
  cfg.job_tracker.tracker_expiry_window = 30.0;
  cfg.faults.crash_namenode_for(40.0, 80.0);
  cfg.faults.crash_for(3, 50.0, 200.0);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
  run.submit(busy_workload());
  run.execute();

  const exp::RunMetrics m = run.metrics();
  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_EQ(m.master_crashes, 1u);
  EXPECT_GT(m.rereplicated_blocks, 0u);
  EXPECT_EQ(m.replication_violations, 0u);
  EXPECT_TRUE(m.audit.clean()) << "NameNode failover left audit violations";
}

// --- correlated outage determinism -------------------------------------------

TEST(Failover, CorrelatedMasterOutageIsDeterministic) {
  auto digest = [] {
    exp::RunConfig cfg;
    cfg.seed = 13;
    cfg.audit.enabled = true;
    cfg.job_tracker.checkpoint_interval = 25.0;
    cfg.job_tracker.checkpoint_write_cost = 1.0;
    cfg.job_tracker.reregistration_window = 3.0;
    cfg.faults.crash_namenode_for(55.0, 70.0);
    cfg.faults.crash_jobtracker_for(60.0, 80.0);
    exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
    run.submit(busy_workload());
    run.execute();
    const exp::RunMetrics m = run.metrics();
    EXPECT_EQ(m.jobs_failed, 0u);
    EXPECT_EQ(m.master_crashes, 2u);
    EXPECT_TRUE(m.audit.clean());
    return m.determinism_digest;
  };
  EXPECT_EQ(digest(), digest());
}

TEST(Failover, CapacityRebuildsQueueMapAfterFailover) {
  // The Capacity scheduler's job->queue map lives in the master's memory;
  // after a crash it must be rebuilt from the replayed job table
  // (on_master_recovered), or replayed jobs would be unroutable.
  exp::RunConfig cfg;
  cfg.seed = 11;
  cfg.audit.enabled = true;
  cfg.job_tracker.checkpoint_interval = 20.0;
  cfg.job_tracker.checkpoint_write_cost = 1.0;
  cfg.job_tracker.reregistration_window = 2.0;
  cfg.faults.crash_jobtracker_for(60.0, 90.0);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kCapacity, cfg);
  run.submit(busy_workload(6));
  auto* cap = dynamic_cast<sched::CapacityScheduler*>(&run.scheduler());
  ASSERT_NE(cap, nullptr);
  EXPECT_FALSE(cap->tenant_mode());

  // Step to just past recovery (crash at 60 s, back at 150 s): the rebuilt
  // map must cover every replayed job with a valid queue.
  while (run.simulator().now() < 155.0 && !run.job_tracker().all_done()) {
    ASSERT_TRUE(run.simulator().step());
  }
  EXPECT_EQ(run.job_tracker().master_crashes(), 1u);
  EXPECT_TRUE(run.job_tracker().master_up());
  const auto active = run.job_tracker().active_jobs();
  EXPECT_FALSE(active.empty());
  for (const mr::JobId id : active) {
    EXPECT_LT(cap->queue_of(id), cap->num_queues());
  }

  run.execute();
  const exp::RunMetrics m = run.metrics();
  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_EQ(m.checkpoint_replays, 1u);
  EXPECT_TRUE(m.audit.clean());
}

TEST(Failover, TenantCapacitySurvivesFailover) {
  // Tenant mode across an outage: tenant-keyed queues are rebuilt from the
  // replayed specs and the preemption sweep keeps ticking afterwards.
  exp::RunConfig cfg;
  cfg.seed = 12;
  cfg.audit.enabled = true;
  cfg.job_tracker.checkpoint_interval = 20.0;
  cfg.job_tracker.checkpoint_write_cost = 1.0;
  cfg.job_tracker.reregistration_window = 2.0;
  cfg.faults.crash_jobtracker_for(60.0, 90.0);
  sched::TenantShareConfig share;
  share.tenants = {{0, "alpha", 2.0}, {1, "beta", 1.0}};
  cfg.tenancy = share;

  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kCapacity, cfg);
  std::vector<workload::JobSpec> jobs = busy_workload(6);
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].tenant = i % 2;
  run.submit(jobs);
  auto* cap = dynamic_cast<sched::CapacityScheduler*>(&run.scheduler());
  ASSERT_NE(cap, nullptr);
  EXPECT_TRUE(cap->tenant_mode());
  run.execute();

  const exp::RunMetrics m = run.metrics();
  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_EQ(m.master_crashes, 1u);
  EXPECT_TRUE(m.audit.clean());
  ASSERT_EQ(m.by_tenant.size(), 2u);
  EXPECT_EQ(m.tenant(0).jobs + m.tenant(1).jobs, 6u);
}

}  // namespace
}  // namespace eant
