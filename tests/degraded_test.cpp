// Degraded-mode survival suite: end-to-end runs under network faults, HDFS
// datanode loss (re-replication, read failover, data-loss declaration),
// shuffle fetch-failure recovery, and the chaos-campaign harness itself.
// Complements fault_test (machine crash/restart protocol), net_test (fabric
// mechanics) and hdfs_test (NameNode bookkeeping) by driving the whole stack
// through degraded states and asserting it converges back to a clean run.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/catalog.h"
#include "exp/builders.h"
#include "exp/chaos.h"
#include "exp/runner.h"
#include "net/topology.h"
#include "workload/job_spec.h"

namespace eant {
namespace {

exp::RunConfig degraded_config(std::uint64_t seed = 7) {
  exp::RunConfig cfg;
  cfg.seed = seed;
  cfg.noise = mr::NoiseConfig::typical();
  cfg.topology = net::TopologySpec::oversubscribed();
  cfg.job_tracker.tracker_expiry_window = 30.0;
  cfg.audit.enabled = true;
  return cfg;
}

exp::RunMetrics run_degraded(exp::RunConfig cfg, int jobs = 3) {
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(exp::job_batch(workload::AppKind::kTerasort, 3000.0, 8, jobs));
  run.execute();
  return run.metrics();
}

// --- network faults ----------------------------------------------------------

TEST(DegradedNet, AccessLinkFailureAbortsFlowsAndJobsStillComplete) {
  auto cfg = degraded_config(3);
  // Hard-down one access link mid-run, long enough to strand in-flight
  // transfers; reads must fail over and fetches must retry or re-execute.
  cfg.faults.fail_link_for(5, 40.0, 300.0);
  const auto m = run_degraded(cfg);

  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_EQ(m.jobs.size(), 3u);
  EXPECT_GT(m.link_faults, 0u);
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  EXPECT_EQ(m.replication_violations, 0u);
}

TEST(DegradedNet, LinkDegradationSlowsButNeverStrands) {
  auto cfg = degraded_config(4);
  // Degrade (not kill) several links: capacity drops, flows re-rate, nothing
  // aborts for the degradation alone.
  cfg.faults.degrade_link_for(1, 30.0, 400.0, 0.2);
  cfg.faults.degrade_link_for(9, 50.0, 400.0, 0.3);
  const auto m = run_degraded(cfg);

  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_GT(m.link_faults, 0u);
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
}

TEST(DegradedNet, RackPartitionHealsAndRunConverges) {
  auto cfg = degraded_config(5);
  cfg.faults.partition_rack(1, 60.0, 200.0);
  const auto m = run_degraded(cfg, 4);

  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_EQ(m.jobs.size(), 4u);
  EXPECT_GT(m.link_faults, 0u);
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  EXPECT_EQ(m.replication_violations, 0u);
}

TEST(DegradedNet, TrunkDegradationStretchesCrossRackTraffic) {
  auto base_cfg = degraded_config(6);
  const auto base = run_degraded(base_cfg);

  auto cfg = degraded_config(6);
  cfg.faults.degrade_trunk_for(0, 30.0, 600.0, 0.15);
  cfg.faults.degrade_trunk_for(1, 30.0, 600.0, 0.15);
  const auto slow = run_degraded(cfg);

  EXPECT_EQ(slow.jobs_failed, 0u);
  // Choked trunks must cost wall-clock time relative to the healthy fabric.
  EXPECT_GT(slow.makespan, base.makespan);
}

// --- shuffle fetch-failure recovery ------------------------------------------

TEST(DegradedShuffle, FetchNoiseRetriesAndRecovers) {
  auto cfg = degraded_config(8);
  cfg.faults.fetch_failure_prob = 0.05;
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(exp::job_batch(workload::AppKind::kTerasort, 3000.0, 8, 3));
  run.execute();
  const auto m = run.metrics();

  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_GT(m.fetch_failures, 0u);
  EXPECT_EQ(run.job_tracker().fetch_failures(), m.fetch_failures);
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
}

TEST(DegradedShuffle, PersistentFetchFailureReExecutesSourceMaps) {
  auto cfg = degraded_config(9);
  // Elevated failure probability with a tight threshold: some map output is
  // bound to be declared lost and re-executed rather than retried forever,
  // yet the jobs still pull through.
  cfg.faults.fetch_failure_prob = 0.12;
  cfg.job_tracker.fetch_failure_threshold = 2;
  cfg.job_tracker.fetch_retry_backoff = 5.0;
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(exp::job_batch(workload::AppKind::kTerasort, 3000.0, 8, 2));
  run.execute();
  const auto m = run.metrics();

  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_GT(m.fetch_failures, 0u);
  EXPECT_GT(run.job_tracker().fetch_reexecuted_maps(), 0u);
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
}

TEST(DegradedShuffle, FetchStormFailsJobsLoudlyInsteadOfLivelocking) {
  auto cfg = degraded_config(9);
  // A pathological regime: at a 35% per-fetch failure rate with a 2-strike
  // source threshold, shuffles essentially never complete.  The run must
  // TERMINATE with loud job failures (reducers burn attempt budget via the
  // fetch-abort limit) — the regression here was a livelock where reduce
  // attempts were killed and relaunched for free forever.
  cfg.faults.fetch_failure_prob = 0.35;
  cfg.job_tracker.fetch_failure_threshold = 2;
  cfg.job_tracker.fetch_retry_backoff = 5.0;
  cfg.time_limit = 20000.0;
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(exp::job_batch(workload::AppKind::kTerasort, 2000.0, 6, 1));
  run.execute();
  const auto m = run.metrics();

  EXPECT_GT(m.jobs_failed, 0u);
  EXPECT_GT(run.job_tracker().fetch_aborted_attempts(), 0u);
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
}

// --- HDFS datanode loss ------------------------------------------------------

TEST(DegradedHdfs, DatanodeLossTriggersRereplicationAndRecovers) {
  auto cfg = degraded_config(10);
  // Down far past the expiry window: the datanode is declared dead, its
  // replicas drop, and re-replication streams restore every block while the
  // machine is dark.
  cfg.faults.crash_for(2, 50.0, 600.0);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(exp::job_batch(workload::AppKind::kTerasort, 3000.0, 8, 3));
  run.execute();
  const auto m = run.metrics();

  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_GT(m.rereplicated_blocks, 0u);
  EXPECT_GT(m.rereplication_mb, 0.0);
  EXPECT_EQ(m.data_loss_events, 0u);  // replication 3, one death: no loss
  EXPECT_EQ(m.replication_violations, 0u);
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
}

TEST(DegradedHdfs, LosingEveryReplicaFailsTheJobLoudly) {
  // 4 machines, replication 3: killing 3 permanently is guaranteed to lose
  // any block without a replica on the lone survivor — and with several
  // blocks per job some block always qualifies.  The job must FAIL (attempts
  // burn against the lost block) instead of silently succeeding, and each
  // lost block must be recorded as a data-loss event.
  exp::RunConfig cfg;
  cfg.seed = 11;
  cfg.noise = mr::NoiseConfig::none();
  cfg.job_tracker.tracker_expiry_window = 5.0;
  cfg.audit.enabled = true;
  cfg.faults.crash_at(0, 1.0).crash_at(1, 1.0).crash_at(2, 1.0);

  exp::Run run(exp::machines({cluster::catalog::desktop(),
                              cluster::catalog::desktop(),
                              cluster::catalog::desktop(),
                              cluster::catalog::t420()}),
               exp::SchedulerKind::kFifo, cfg);
  run.submit({exp::single_job(workload::AppKind::kWordcount, 2000.0, 2)});
  run.execute();
  const auto m = run.metrics();

  EXPECT_EQ(m.jobs_failed, 1u);
  EXPECT_GT(m.data_loss_events, 0u);
  EXPECT_EQ(m.data_loss_events, run.job_tracker().namenode().lost_blocks().size());
  EXPECT_EQ(m.replication_violations, 0u);  // lost blocks are accounted, not violations
}

TEST(DegradedHdfs, RereplicationRestoresFullHealthBeforeRunEnds) {
  auto cfg = degraded_config(12);
  cfg.faults.crash_for(6, 40.0, 500.0);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(exp::job_batch(workload::AppKind::kGrep, 3000.0, 4, 3));
  run.execute();
  const auto m = run.metrics();

  EXPECT_EQ(m.jobs_failed, 0u);
  // execute() drains in-flight repair streams, so by snapshot time every
  // block is either fully replicated or still queued only because no legal
  // target exists (not the case on the 16-machine fleet with one death).
  EXPECT_EQ(run.job_tracker().rereplication_active(), 0u);
  EXPECT_EQ(m.replication_violations, 0u);
}

// --- determinism under faults ------------------------------------------------

TEST(DegradedDeterminism, IdenticalSeedsReproduceDigestsUnderChaos) {
  auto digest = [] {
    auto cfg = degraded_config(13);
    cfg.faults.crash_for(3, 50.0, 300.0);
    cfg.faults.fail_link_for(8, 70.0, 150.0);
    cfg.faults.fetch_failure_prob = 0.05;
    return run_degraded(cfg).determinism_digest;
  };
  EXPECT_EQ(digest(), digest());
}

// --- chaos harness -----------------------------------------------------------

TEST(ChaosHarness, DefaultMixesCoverTheFaultTaxonomy) {
  const auto mixes = exp::default_chaos_mixes();
  ASSERT_GE(mixes.size(), 6u);
  std::vector<std::string> names;
  for (const auto& m : mixes) names.push_back(m.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "rack-partition"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "datanode-loss"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "fetch-noise"), names.end());
}

TEST(ChaosHarness, MiniCampaignSurvivesDeterministically) {
  exp::ChaosConfig cc;
  cc.seeds = {1, 2};
  cc.horizon = 700.0;
  cc.verify_determinism = true;

  // Two representative mixes keep the unit-test wall-clock modest; the full
  // matrix runs in bench/chaos_campaign.
  auto all = exp::default_chaos_mixes();
  std::vector<exp::ChaosMix> mixes;
  for (auto& m : all)
    if (m.name == "machine-crashes" || m.name == "fetch-noise")
      mixes.push_back(std::move(m));
  ASSERT_EQ(mixes.size(), 2u);

  auto base = degraded_config(1);
  const auto outcomes = exp::run_chaos_campaign(
      exp::paper_fleet(), exp::SchedulerKind::kFair, base,
      exp::job_batch(workload::AppKind::kTerasort, 3000.0, 8, 3), mixes, cc);

  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.survived) << o.mix << " seed " << o.seed << ": "
                            << o.metrics.audit.summary();
    EXPECT_TRUE(o.deterministic) << o.mix << " seed " << o.seed;
  }
}

}  // namespace
}  // namespace eant
