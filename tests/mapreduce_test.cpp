// Unit tests for the MapReduce engine: job state machine, noise model,
// TaskTracker slot/sampling mechanics, JobTracker lifecycle (waves, reduce
// gating, shuffle, locality, speculation support).

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/catalog.h"
#include "cluster/cluster.h"
#include "common/error.h"
#include "common/stats.h"
#include "hdfs/namenode.h"
#include "mapreduce/job.h"
#include "mapreduce/job_tracker.h"
#include "mapreduce/noise.h"
#include "sched/fifo.h"
#include "sim/simulator.h"
#include "workload/job_spec.h"

namespace eant::mr {
namespace {

workload::JobSpec wordcount_job(Megabytes input_mb = 256.0, int reduces = 2) {
  workload::JobSpec s;
  s.app = workload::AppKind::kWordcount;
  s.input_mb = input_mb;
  s.num_reduces = reduces;
  return s;
}

/// A fully wired single-type test cluster driving a FIFO scheduler.
struct Harness {
  explicit Harness(std::size_t machines = 2,
                   NoiseConfig noise_config = NoiseConfig::none(),
                   JobTrackerConfig jt_config = {},
                   cluster::MachineType type = cluster::catalog::desktop())
      : cluster(sim),
        namenode(Rng(11), machines),
        noise(noise_config, Rng(12)) {
    cluster.add_machines(type, machines);
    jt = std::make_unique<JobTracker>(sim, cluster, namenode, scheduler,
                                      noise, jt_config);
    jt->start_trackers();
  }

  void run_to_completion(Seconds limit = 48 * 3600.0) {
    while (!jt->all_done()) {
      ASSERT_LE(sim.now(), limit) << "workload did not finish in time";
      ASSERT_TRUE(sim.step());
    }
  }

  sim::Simulator sim;
  cluster::Cluster cluster;
  hdfs::NameNode namenode;
  NoiseModel noise;
  sched::FifoScheduler scheduler;
  std::unique_ptr<JobTracker> jt;
};

// --- TaskKind / JobState ------------------------------------------------------

TEST(TaskKind, Names) {
  EXPECT_EQ(kind_name(TaskKind::kMap), "map");
  EXPECT_EQ(kind_name(TaskKind::kReduce), "reduce");
}

TEST(JobState, InitMapsBuildsOneTaskPerBlock) {
  hdfs::NameNode nn(Rng(1), 4);
  JobState js(0, wordcount_job(64.0 * 5), 4);
  js.init_maps(nn.create_file(64.0 * 5), nn);
  EXPECT_EQ(js.num_maps(), 5u);
  EXPECT_EQ(js.pending(TaskKind::kMap), 5u);
  EXPECT_EQ(js.pending(TaskKind::kReduce), 0u);
  EXPECT_FALSE(js.reduces_built());
  for (TaskIndex i = 0; i < 5; ++i) {
    const TaskSpec& t = js.task(TaskKind::kMap, i);
    EXPECT_EQ(t.kind, TaskKind::kMap);
    EXPECT_DOUBLE_EQ(t.input_mb, 64.0);
    EXPECT_GT(t.cpu_ref_seconds, 0.0);
    EXPECT_EQ(js.status(TaskKind::kMap, i), TaskStatus::kPending);
  }
}

TEST(JobState, ClaimMapPrefersLocalSplit) {
  hdfs::NameNode nn(Rng(2), 8, 3);
  JobState js(0, wordcount_job(64.0 * 12), 8);
  const auto blocks = nn.create_file(64.0 * 12);
  js.init_maps(blocks, nn);

  bool local = false;
  const auto idx = js.claim_map(0, local);
  ASSERT_TRUE(idx.has_value());
  // If machine 0 holds any replica, the claim must be local to it.
  bool machine0_has_replica = false;
  for (hdfs::BlockId b : blocks) {
    if (nn.is_local(b, 0)) machine0_has_replica = true;
  }
  EXPECT_EQ(local, machine0_has_replica);
  if (local) {
    EXPECT_TRUE(nn.is_local(js.task(TaskKind::kMap, *idx).block, 0));
  }
  EXPECT_EQ(js.status(TaskKind::kMap, *idx), TaskStatus::kRunning);
  EXPECT_EQ(js.running(TaskKind::kMap), 1u);
}

TEST(JobState, ClaimFallsBackToRemote) {
  hdfs::NameNode nn(Rng(3), 8, 1);  // single replica: most nodes non-local
  JobState js(0, wordcount_job(64.0), 8);
  const auto blocks = nn.create_file(64.0);
  js.init_maps(blocks, nn);
  const cluster::MachineId holder = nn.locations(blocks[0])[0];
  const cluster::MachineId other = (holder + 1) % 8;
  bool local = true;
  const auto idx = js.claim_map(other, local);
  ASSERT_TRUE(idx.has_value());
  EXPECT_FALSE(local);
}

TEST(JobState, ClaimExhaustsPendingThenReturnsNothing) {
  hdfs::NameNode nn(Rng(4), 2);
  JobState js(0, wordcount_job(64.0 * 3), 2);
  js.init_maps(nn.create_file(64.0 * 3), nn);
  bool local;
  EXPECT_TRUE(js.claim_map(0, local).has_value());
  EXPECT_TRUE(js.claim_map(0, local).has_value());
  EXPECT_TRUE(js.claim_map(1, local).has_value());
  EXPECT_FALSE(js.claim_map(0, local).has_value());
  EXPECT_EQ(js.pending(TaskKind::kMap), 0u);
  EXPECT_EQ(js.running(TaskKind::kMap), 3u);
}

TEST(JobState, UnclaimReturnsTaskToPending) {
  hdfs::NameNode nn(Rng(5), 2);
  JobState js(0, wordcount_job(64.0), 2);
  js.init_maps(nn.create_file(64.0), nn);
  bool local;
  const auto idx = js.claim_map(0, local);
  ASSERT_TRUE(idx.has_value());
  js.unclaim(TaskKind::kMap, *idx, 0);
  EXPECT_EQ(js.status(TaskKind::kMap, *idx), TaskStatus::kPending);
  EXPECT_EQ(js.pending(TaskKind::kMap), 1u);
  EXPECT_TRUE(js.claim_map(1, local).has_value());
}

TEST(JobState, MarkDoneUpdatesCountsAndHistogram) {
  hdfs::NameNode nn(Rng(6), 2);
  JobState js(0, wordcount_job(64.0 * 2), 2);
  js.init_maps(nn.create_file(64.0 * 2), nn);
  bool local;
  const auto idx = js.claim_map(0, local);
  js.mark_started(TaskKind::kMap, *idx, 0, 1.0);

  TaskReport r;
  r.spec = js.task(TaskKind::kMap, *idx);
  r.machine = 0;
  r.start = 1.0;
  r.finish = 11.0;
  js.mark_done(r);
  EXPECT_EQ(js.done(TaskKind::kMap), 1u);
  EXPECT_EQ(js.running(TaskKind::kMap), 0u);
  EXPECT_EQ(js.completed_per_machine(TaskKind::kMap)[0], 1u);
  EXPECT_EQ(js.started_per_machine(TaskKind::kMap)[0], 1u);
  EXPECT_DOUBLE_EQ(js.map_task_seconds(), 10.0);
  EXPECT_DOUBLE_EQ(js.mean_completed_duration(TaskKind::kMap), 10.0);
  // Double completion is a contract violation.
  EXPECT_THROW(js.mark_done(r), PreconditionError);
}

TEST(JobState, ReduceLifecycleAndPhaseAccounting) {
  hdfs::NameNode nn(Rng(7), 2);
  JobState js(0, wordcount_job(64.0, 1), 2);
  js.init_maps(nn.create_file(64.0), nn);
  EXPECT_FALSE(js.claim_reduce().has_value());  // not built yet

  TaskSpec reduce;
  reduce.job = 0;
  reduce.index = 0;
  reduce.kind = TaskKind::kReduce;
  reduce.shuffle_seconds = 4.0;
  js.init_reduces({reduce});
  EXPECT_TRUE(js.reduces_built());
  EXPECT_EQ(js.pending(TaskKind::kReduce), 1u);

  const auto idx = js.claim_reduce();
  ASSERT_TRUE(idx.has_value());
  js.mark_started(TaskKind::kReduce, *idx, 1, 0.0);
  TaskReport r;
  r.spec = js.task(TaskKind::kReduce, *idx);
  r.machine = 1;
  r.start = 0.0;
  r.finish = 10.0;
  js.mark_done(r);
  EXPECT_DOUBLE_EQ(js.shuffle_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(js.reduce_task_seconds(), 6.0);
}

TEST(JobState, ExpectedMapOutputUsesProfileRatio) {
  hdfs::NameNode nn(Rng(8), 2);
  workload::JobSpec spec = wordcount_job(64.0 * 4);
  spec.app = workload::AppKind::kTerasort;  // ratio 1.0
  JobState js(0, spec, 2);
  js.init_maps(nn.create_file(spec.input_mb), nn);
  EXPECT_DOUBLE_EQ(js.expected_map_output_mb(), 256.0);
}

TEST(JobState, SpeculativeFlagLifecycle) {
  hdfs::NameNode nn(Rng(9), 2);
  JobState js(0, wordcount_job(64.0), 2);
  js.init_maps(nn.create_file(64.0), nn);
  EXPECT_THROW(js.mark_speculative(TaskKind::kMap, 0), PreconditionError);
  bool local;
  const auto idx = js.claim_map(0, local);
  js.mark_speculative(TaskKind::kMap, *idx);
  EXPECT_TRUE(js.is_speculative(TaskKind::kMap, *idx));
}

TEST(JobState, RejectsInvalidConstruction) {
  workload::JobSpec bad = wordcount_job(0.0);
  EXPECT_THROW(JobState(0, bad, 2), PreconditionError);
  bad = wordcount_job(64.0, 0);
  EXPECT_THROW(JobState(0, bad, 2), PreconditionError);
}

// --- NoiseModel ---------------------------------------------------------------

TEST(Noise, NoneIsExactIdentity) {
  NoiseModel n(NoiseConfig::none(), Rng(1));
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(n.demand_multiplier(), 1.0);
    EXPECT_DOUBLE_EQ(n.duration_multiplier(), 1.0);
    EXPECT_DOUBLE_EQ(n.straggler_multiplier(), 1.0);
    EXPECT_DOUBLE_EQ(n.measured(0.37), 0.37);
  }
}

TEST(Noise, DemandJitterHasMeanOne) {
  NoiseConfig c;
  c.demand_jitter_sigma = 0.2;
  NoiseModel n(c, Rng(2));
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(n.demand_multiplier());
  EXPECT_NEAR(s.mean(), 1.0, 0.01);
  EXPECT_GT(s.stddev(), 0.15);
}

TEST(Noise, StragglerFrequencyAndRange) {
  NoiseConfig c;
  c.straggler_prob = 0.1;
  c.straggler_factor_min = 2.0;
  c.straggler_factor_max = 3.0;
  NoiseModel n(c, Rng(3));
  int stragglers = 0;
  for (int i = 0; i < 20000; ++i) {
    const double f = n.straggler_multiplier();
    if (f > 1.5) {  // non-stragglers return exactly 1; factors are in [2, 3]
      ++stragglers;
      EXPECT_GE(f, 2.0);
      EXPECT_LE(f, 3.0);
    }
  }
  EXPECT_NEAR(stragglers / 20000.0, 0.1, 0.01);
}

TEST(Noise, MeasurementErrorIsUnbiased) {
  NoiseConfig c;
  c.measurement_sigma = 0.1;
  NoiseModel n(c, Rng(4));
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(n.measured(0.5));
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  EXPECT_THROW(n.measured(-0.1), PreconditionError);
}

TEST(Noise, RejectsBadConfig) {
  NoiseConfig c;
  c.straggler_prob = 1.5;
  EXPECT_THROW(NoiseModel(c, Rng(5)), PreconditionError);
  c = NoiseConfig{};
  c.straggler_factor_min = 0.5;
  EXPECT_THROW(NoiseModel(c, Rng(5)), PreconditionError);
}

// --- TaskTracker / JobTracker --------------------------------------------------

TEST(JobTracker, SingleJobRunsToCompletion) {
  Harness h(2);
  const JobId id = h.jt->submit_now(wordcount_job(64.0 * 8, 2));
  h.run_to_completion();
  const JobState& js = h.jt->job(id);
  EXPECT_TRUE(js.complete());
  EXPECT_EQ(js.done(TaskKind::kMap), 8u);
  EXPECT_EQ(js.done(TaskKind::kReduce), 2u);
  EXPECT_GT(js.completion_time(), 0.0);
  EXPECT_TRUE(h.jt->active_jobs().empty());
}

TEST(JobTracker, SlotConstraintNeverViolated) {
  Harness h(2);
  // One machine type with 4 map + 2 reduce slots; watch every report.
  h.jt->set_report_listener([&](const TaskReport&) {
    for (cluster::MachineId m = 0; m < h.cluster.size(); ++m) {
      EXPECT_LE(h.jt->tracker(m).running(TaskKind::kMap), 4);
      EXPECT_LE(h.jt->tracker(m).running(TaskKind::kReduce), 2);
    }
  });
  h.jt->submit_now(wordcount_job(64.0 * 40, 6));
  h.run_to_completion();
}

TEST(JobTracker, ReducesWaitForAllMapsByDefault) {
  Harness h(2);
  const JobId id = h.jt->submit_now(wordcount_job(64.0 * 10, 2));
  bool saw_reduce_before_maps_done = false;
  h.jt->set_report_listener([&](const TaskReport& r) {
    if (r.spec.kind == TaskKind::kReduce &&
        h.jt->job(id).done(TaskKind::kMap) < 10) {
      saw_reduce_before_maps_done = true;
    }
  });
  h.run_to_completion();
  EXPECT_FALSE(saw_reduce_before_maps_done);
}

TEST(JobTracker, SlowstartReleasesReducesEarly) {
  JobTrackerConfig cfg;
  cfg.reduce_slowstart = 0.25;
  Harness h(2, NoiseConfig::none(), cfg);
  const JobId id = h.jt->submit_now(wordcount_job(64.0 * 16, 2));
  h.run_to_completion();
  EXPECT_TRUE(h.jt->job(id).complete());
}

TEST(JobTracker, RemoteMapsPayReadPenalty) {
  // Force all maps remote vs all local and compare durations.
  JobTrackerConfig remote_cfg;
  remote_cfg.locality_override = [](const TaskSpec&, cluster::MachineId) {
    return false;
  };
  JobTrackerConfig local_cfg;
  local_cfg.locality_override = [](const TaskSpec&, cluster::MachineId) {
    return true;
  };
  double remote_time = 0.0, local_time = 0.0;
  {
    Harness h(2, NoiseConfig::none(), remote_cfg);
    const JobId id = h.jt->submit_now(wordcount_job(64.0 * 8, 1));
    h.run_to_completion();
    remote_time = h.jt->job(id).completion_time();
  }
  {
    Harness h(2, NoiseConfig::none(), local_cfg);
    const JobId id = h.jt->submit_now(wordcount_job(64.0 * 8, 1));
    h.run_to_completion();
    local_time = h.jt->job(id).completion_time();
  }
  EXPECT_GT(remote_time, local_time);
}

TEST(JobTracker, ReportsCarryUtilisationSamples) {
  Harness h(1);
  std::size_t reports = 0;
  h.jt->set_report_listener([&](const TaskReport& r) {
    ++reports;
    ASSERT_FALSE(r.samples.empty());
    double total = 0.0;
    for (const auto& s : r.samples) {
      EXPECT_GT(s.duration, 0.0);
      EXPECT_GE(s.util, 0.0);
      total += s.duration;
    }
    // Windows must tile the task's runtime exactly.
    EXPECT_NEAR(total, r.duration(), 1e-9);
  });
  h.jt->submit_now(wordcount_job(64.0 * 6, 2));
  h.run_to_completion();
  EXPECT_EQ(reports, 8u);
}

TEST(JobTracker, DeferredSubmissionHonoursSubmitTime) {
  Harness h(2);
  workload::JobSpec spec = wordcount_job(64.0 * 2, 1);
  spec.submit_time = 500.0;
  h.jt->submit(spec);
  EXPECT_FALSE(h.jt->all_done());
  h.run_to_completion();
  const JobState& js = h.jt->job(0);
  EXPECT_DOUBLE_EQ(js.submit_time(), 500.0);
  EXPECT_GT(js.finish_time(), 500.0);
}

TEST(JobTracker, MultipleJobsAllComplete) {
  Harness h(3);
  for (int i = 0; i < 5; ++i) h.jt->submit_now(wordcount_job(64.0 * 4, 1));
  h.run_to_completion();
  EXPECT_EQ(h.jt->jobs_completed(), 5u);
}

TEST(JobTracker, CapabilitySharesSumToOne) {
  Harness h(4);
  double total = 0.0;
  for (cluster::MachineId m = 0; m < 4; ++m) {
    total += h.jt->capability_share(m);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(JobTracker, ShuffleSkewPenaltyLengthensReduces) {
  // skew_penalty_weight > 0 must never shorten the shuffle.
  JobTrackerConfig no_skew;
  no_skew.skew_penalty_weight = 0.0;
  JobTrackerConfig with_skew;
  with_skew.skew_penalty_weight = 5.0;
  double t_no = 0.0, t_with = 0.0;
  {
    Harness h(2, NoiseConfig::none(), no_skew,
              cluster::catalog::t420());
    const JobId id = h.jt->submit_now([&] {
      auto s = wordcount_job(64.0 * 8, 1);
      s.app = workload::AppKind::kTerasort;
      return s;
    }());
    h.run_to_completion();
    t_no = h.jt->job(id).shuffle_seconds();
  }
  {
    Harness h(2, NoiseConfig::none(), with_skew,
              cluster::catalog::t420());
    const JobId id = h.jt->submit_now([&] {
      auto s = wordcount_job(64.0 * 8, 1);
      s.app = workload::AppKind::kTerasort;
      return s;
    }());
    h.run_to_completion();
    t_with = h.jt->job(id).shuffle_seconds();
  }
  EXPECT_GE(t_with, t_no);
}

TEST(JobTracker, SpeculativeAttemptWinnerKillsLoser) {
  Harness h(2);
  const JobId id = h.jt->submit_now(wordcount_job(64.0 * 2, 1));
  // Let the first map start, then speculate it on the other machine.
  bool speculated = false;
  std::size_t completions = 0;
  h.jt->set_report_listener(
      [&](const TaskReport& r) {
        if (r.spec.kind == TaskKind::kMap) ++completions;
      });
  while (!h.jt->all_done()) {
    if (!speculated &&
        h.jt->job(id).running(TaskKind::kMap) > 0) {
      for (cluster::MachineId m = 0; m < 2; ++m) {
        for (TaskIndex i = 0; i < 2; ++i) {
          if (h.jt->job(id).status(TaskKind::kMap, i) ==
                  TaskStatus::kRunning &&
              h.jt->start_speculative(id, TaskKind::kMap, i,
                                      h.jt->tracker(m))) {
            speculated = true;
          }
        }
      }
    }
    ASSERT_TRUE(h.sim.step());
  }
  EXPECT_TRUE(speculated);
  // Exactly one report per map task (losing attempts are dropped).
  EXPECT_EQ(completions, 2u);
  EXPECT_TRUE(h.jt->job(id).complete());
}

TEST(JobTracker, CancelOnFinishedAttemptReturnsFalse) {
  Harness h(1);
  const JobId id = h.jt->submit_now(wordcount_job(64.0, 1));
  h.run_to_completion();
  // Cancelling an attempt that already finished must be a no-op refusal,
  // not an error — the twin-kill after a speculative win hits this path.
  EXPECT_FALSE(h.jt->tracker(0).cancel_task(id, TaskKind::kMap, 0));
  EXPECT_FALSE(h.jt->tracker(0).cancel_task(id, TaskKind::kReduce, 0));
}

TEST(JobTracker, TwinKillNeverDoubleCountsCompleted) {
  Harness h(2);
  const JobId id = h.jt->submit_now(wordcount_job(64.0 * 2, 1));
  bool speculated = false;
  while (!h.jt->all_done()) {
    if (!speculated) {
      for (cluster::MachineId m = 0; m < 2 && !speculated; ++m) {
        for (TaskIndex i = 0; i < 2 && !speculated; ++i) {
          if (h.jt->job(id).status(TaskKind::kMap, i) == TaskStatus::kRunning &&
              h.jt->start_speculative(id, TaskKind::kMap, i,
                                      h.jt->tracker(m))) {
            speculated = true;
          }
        }
      }
    }
    ASSERT_TRUE(h.sim.step());
  }
  ASSERT_TRUE(speculated);
  // The loser of a speculated task is killed, not completed: the fleet-wide
  // completion counters must add up to exactly one completion per task.
  std::size_t completed_maps = 0;
  std::size_t completed_reduces = 0;
  for (cluster::MachineId m = 0; m < 2; ++m) {
    completed_maps += h.jt->tracker(m).completed(TaskKind::kMap);
    completed_reduces += h.jt->tracker(m).completed(TaskKind::kReduce);
  }
  EXPECT_EQ(completed_maps, 2u);
  EXPECT_EQ(completed_reduces, 1u);
}

TEST(JobTracker, FailedAttemptRequeuesAndJobStillCompletes) {
  Harness h(2);
  // The first two attempts launched (whichever machines get them) die
  // halfway; the engine must retry and finish, with speculation enabled.
  int faults_left = 2;
  h.jt->set_attempt_fault_hook(
      [&](const TaskSpec&, cluster::MachineId) -> std::optional<double> {
        if (faults_left <= 0) return std::nullopt;
        --faults_left;
        return 0.5;
      });
  const JobId id = h.jt->submit_now(wordcount_job(64.0 * 4, 1));
  h.run_to_completion();
  EXPECT_EQ(faults_left, 0);
  EXPECT_TRUE(h.jt->job(id).complete());
  EXPECT_EQ(h.jt->failed_attempts(), 2u);
  EXPECT_GT(h.jt->wasted_task_seconds(), 0.0);
  // The transient failures counted toward their tasks' attempt budgets.
  std::size_t budget_used = 0;
  for (TaskIndex i = 0; i < h.jt->job(id).num_maps(); ++i) {
    budget_used += static_cast<std::size_t>(
        h.jt->job(id).failed_attempts(TaskKind::kMap, i));
  }
  for (TaskIndex i = 0; i < h.jt->job(id).num_reduces(); ++i) {
    budget_used += static_cast<std::size_t>(
        h.jt->job(id).failed_attempts(TaskKind::kReduce, i));
  }
  EXPECT_EQ(budget_used, 2u);
}

TEST(JobTracker, JobFailsAfterMaxAttempts) {
  JobTrackerConfig cfg;
  cfg.max_attempts = 3;
  cfg.blacklist_threshold = 0;  // isolate the attempt-budget behaviour
  Harness h(2, NoiseConfig::none(), cfg);
  h.jt->set_attempt_fault_hook(
      [](const TaskSpec&, cluster::MachineId) { return 0.5; });
  std::size_t attempt_waste = 0;
  std::size_t job_waste = 0;
  h.jt->set_waste_listener([&](const TaskReport&, WasteReason reason) {
    if (reason == WasteReason::kAttemptFailed) ++attempt_waste;
    if (reason == WasteReason::kJobFailed) ++job_waste;
  });
  const JobId id = h.jt->submit_now(wordcount_job(64.0 * 2, 1));
  h.run_to_completion();
  EXPECT_TRUE(h.jt->job(id).failed());
  EXPECT_FALSE(h.jt->job(id).complete());
  EXPECT_EQ(h.jt->jobs_failed(), 1u);
  EXPECT_EQ(h.jt->jobs_completed(), 0u);
  EXPECT_TRUE(h.jt->active_jobs().empty());
  // The first task to burn its budget kills the job: exactly max_attempts
  // transient failures on that task, and the rest of the fleet's running
  // attempts are reaped as job-failure waste.
  EXPECT_GE(attempt_waste, static_cast<std::size_t>(cfg.max_attempts));
  // No machine may still host demand for the dead job.
  for (cluster::MachineId m = 0; m < 2; ++m) {
    EXPECT_EQ(h.jt->tracker(m).running(TaskKind::kMap), 0);
    EXPECT_EQ(h.jt->tracker(m).running(TaskKind::kReduce), 0);
  }
  (void)job_waste;  // may be zero when no sibling attempt was in flight
}

TEST(JobTracker, SpeculativeTwinSurvivesLoserFailure) {
  Harness h(2);
  // The job's single map fails near the end of its original attempt; a
  // speculative twin launched on the other machine must survive the loser's
  // failure and complete the task without the speculative flag leaking.
  bool fault_armed = true;
  h.jt->set_attempt_fault_hook(
      [&](const TaskSpec&, cluster::MachineId) -> std::optional<double> {
        if (!fault_armed) return std::nullopt;
        fault_armed = false;
        return 0.9;
      });
  const JobId id = h.jt->submit_now(wordcount_job(64.0, 1));
  bool speculated = false;
  while (!h.jt->all_done()) {
    if (!speculated &&
        h.jt->job(id).status(TaskKind::kMap, 0) == TaskStatus::kRunning) {
      // Duplicate onto whichever machine is NOT hosting the doomed original.
      for (cluster::MachineId m = 0; m < 2 && !speculated; ++m) {
        if (h.jt->tracker(m).is_running(id, TaskKind::kMap, 0)) {
          speculated = h.jt->start_speculative(id, TaskKind::kMap, 0,
                                               h.jt->tracker(1 - m));
        }
      }
    }
    ASSERT_TRUE(h.sim.step());
  }
  EXPECT_TRUE(speculated);
  EXPECT_TRUE(h.jt->job(id).complete());
  EXPECT_FALSE(h.jt->job(id).is_speculative(TaskKind::kMap, 0));
  EXPECT_EQ(h.jt->failed_attempts(), 1u);
  // Exactly one attempt completed the map: the surviving twin.
  EXPECT_EQ(h.jt->tracker(0).completed(TaskKind::kMap) +
                h.jt->tracker(1).completed(TaskKind::kMap),
            1u);
}

TEST(JobTracker, TrackerCancelRemovesDemand) {
  Harness h(1);
  const JobId id = h.jt->submit_now(wordcount_job(64.0, 1));
  // Step until the map starts.
  while (h.jt->job(id).running(TaskKind::kMap) == 0) {
    ASSERT_TRUE(h.sim.step());
  }
  auto& machine = h.cluster.machine(0);
  EXPECT_GT(machine.demand_cores(), 0.0);
  EXPECT_TRUE(h.jt->tracker(0).cancel_task(id, TaskKind::kMap, 0));
  EXPECT_DOUBLE_EQ(machine.demand_cores(), 0.0);
  EXPECT_FALSE(h.jt->tracker(0).cancel_task(id, TaskKind::kMap, 0));
}

TEST(JobTracker, RejectsMismatchedNameNode) {
  sim::Simulator sim;
  cluster::Cluster cluster(sim);
  cluster.add_machines(cluster::catalog::desktop(), 2);
  hdfs::NameNode nn(Rng(1), 5);  // wrong datanode count
  NoiseModel noise(NoiseConfig::none(), Rng(2));
  sched::FifoScheduler sched;
  EXPECT_THROW(JobTracker(sim, cluster, nn, sched, noise),
               PreconditionError);
}

}  // namespace
}  // namespace eant::mr
