// Fault-injection & fault-tolerance suite: FaultPlan/FaultInjector
// mechanics, machine power-down accounting, TaskTracker crash/restart, the
// JobTracker's Hadoop-style recovery protocol (tracker expiry, re-queueing,
// attempt budgets, blacklisting) and E-Ant's re-convergence after node loss.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "cluster/catalog.h"
#include "cluster/machine.h"
#include "common/error.h"
#include "core/eant_scheduler.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "mapreduce/job_tracker.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "workload/job_spec.h"

namespace eant {
namespace {

using cluster::MachineId;
using mr::TaskKind;

// --- FaultPlan ---------------------------------------------------------------

TEST(FaultPlan, DisabledByDefault) {
  sim::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
}

TEST(FaultPlan, HelpersBuildScriptedEvents) {
  sim::FaultPlan plan;
  plan.crash_for(2, 100.0, 50.0).crash_at(0, 30.0).recover_at(0, 40.0);
  EXPECT_TRUE(plan.enabled());
  ASSERT_EQ(plan.events.size(), 4u);
  EXPECT_EQ(plan.events[0].machine, 2u);
  EXPECT_EQ(plan.events[0].kind, sim::FaultEvent::Kind::kCrash);
  EXPECT_DOUBLE_EQ(plan.events[0].time, 100.0);
  EXPECT_EQ(plan.events[1].kind, sim::FaultEvent::Kind::kRecover);
  EXPECT_DOUBLE_EQ(plan.events[1].time, 150.0);
  EXPECT_EQ(plan.events[2].machine, 0u);
  EXPECT_EQ(plan.events[3].machine, 0u);
}

TEST(FaultPlan, StochasticAndTransientKnobsEnable) {
  sim::FaultPlan mtbf_only;
  mtbf_only.mtbf = 1000.0;
  EXPECT_TRUE(mtbf_only.enabled());
  sim::FaultPlan task_only;
  task_only.task_failure_prob = 0.01;
  EXPECT_TRUE(task_only.enabled());
}

// --- FaultInjector -----------------------------------------------------------

// Drains a simulator whose queue never empties (stochastic fault processes
// reschedule forever) up to a time horizon.
void run_until(sim::Simulator& sim, Seconds horizon) {
  while (sim.now() < horizon) {
    if (!sim.step()) break;
  }
}

TEST(FaultInjector, ScriptedTransitionsFireInOrder) {
  sim::Simulator sim;
  sim::FaultPlan plan;
  plan.crash_for(1, 10.0, 5.0).crash_at(0, 12.0);
  sim::FaultInjector inj(sim, plan, Rng(7), 2);
  std::vector<std::size_t> crashed, recovered;
  inj.set_handlers([&](std::size_t m) { crashed.push_back(m); },
                   [&](std::size_t m) { recovered.push_back(m); });
  inj.start();
  EXPECT_TRUE(inj.is_up(0));
  EXPECT_TRUE(inj.is_up(1));
  run_until(sim, 100.0);

  ASSERT_EQ(crashed, (std::vector<std::size_t>{1, 0}));
  ASSERT_EQ(recovered, (std::vector<std::size_t>{1}));
  EXPECT_FALSE(inj.is_up(0));  // never recovered
  EXPECT_TRUE(inj.is_up(1));
  EXPECT_EQ(inj.crashes(), 2u);
  ASSERT_EQ(inj.log().size(), 3u);
  EXPECT_DOUBLE_EQ(inj.log()[0].time, 10.0);
  EXPECT_FALSE(inj.log()[0].up);
  EXPECT_DOUBLE_EQ(inj.log()[1].time, 12.0);
  EXPECT_DOUBLE_EQ(inj.log()[2].time, 15.0);
  EXPECT_TRUE(inj.log()[2].up);
}

TEST(FaultInjector, RedundantScriptedTransitionsAreIgnored) {
  sim::Simulator sim;
  sim::FaultPlan plan;
  plan.crash_at(0, 10.0).crash_at(0, 11.0).recover_at(0, 20.0).recover_at(0,
                                                                          21.0);
  sim::FaultInjector inj(sim, plan, Rng(7), 1);
  int crashes = 0, recoveries = 0;
  inj.set_handlers([&](std::size_t) { ++crashes; },
                   [&](std::size_t) { ++recoveries; });
  inj.start();
  run_until(sim, 100.0);
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(recoveries, 1);
  EXPECT_EQ(inj.log().size(), 2u);
}

TEST(FaultInjector, StochasticFailuresDeterministicPerSeed) {
  auto collect = [](std::uint64_t seed) {
    sim::Simulator sim;
    sim::FaultPlan plan;
    plan.mtbf = 400.0;
    plan.mttr = 60.0;
    sim::FaultInjector inj(sim, plan, Rng(seed), 4);
    inj.set_handlers([](std::size_t) {}, [](std::size_t) {});
    inj.start();
    run_until(sim, 5000.0);
    return inj.log();
  };

  const auto a = collect(42);
  const auto b = collect(42);
  const auto c = collect(43);

  ASSERT_FALSE(a.empty()) << "mtbf=400 over 5000 s must produce failures";
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].machine, b[i].machine);
    EXPECT_EQ(a[i].up, b[i].up);
  }
  // A different seed draws different crash times.
  ASSERT_FALSE(c.empty());
  EXPECT_NE(a.front().time, c.front().time);
}

TEST(FaultInjector, TransientDrawsAreFractionsInUnitInterval) {
  sim::Simulator sim;
  sim::FaultPlan plan;
  plan.task_failure_prob = 0.5;
  sim::FaultInjector inj(sim, plan, Rng(1), 1);
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto f = inj.draw_attempt_failure();
    if (f) {
      ++failures;
      EXPECT_GT(*f, 0.0);
      EXPECT_LT(*f, 1.0);
    }
  }
  // ~Binomial(1000, 0.5); 400..600 is > 6 sigma.
  EXPECT_GT(failures, 400);
  EXPECT_LT(failures, 600);
}

// --- Machine power-down ------------------------------------------------------

TEST(Machine, PowersDownToZeroAndAccruesDowntime) {
  sim::Simulator sim;
  cluster::Machine m(sim, 0, cluster::catalog::desktop());
  const Watts idle = m.type().idle_power;
  EXPECT_GT(m.power(), 0.0);

  sim.schedule_at(100.0, [] {});
  sim.step();
  const Joules before_crash = m.energy();
  EXPECT_NEAR(before_crash, idle * 100.0, 1e-6);

  m.set_up(false);
  EXPECT_FALSE(m.is_up());
  EXPECT_DOUBLE_EQ(m.power(), 0.0);
  EXPECT_DOUBLE_EQ(m.utilization(), 0.0);

  sim.schedule_at(160.0, [] {});
  sim.step();
  // No energy accrues while down; downtime does.
  EXPECT_NEAR(m.energy(), before_crash, 1e-9);
  EXPECT_NEAR(m.downtime(), 60.0, 1e-9);

  m.set_up(true);
  sim.schedule_at(200.0, [] {});
  sim.step();
  EXPECT_NEAR(m.energy(), before_crash + idle * 40.0, 1e-6);
  EXPECT_NEAR(m.downtime(), 60.0, 1e-9);
}

// --- end-to-end recovery through the exp harness -----------------------------

exp::RunConfig faulted_config(Seconds expiry_window = 30.0) {
  exp::RunConfig cfg;
  cfg.seed = 5;
  cfg.job_tracker.tracker_expiry_window = expiry_window;
  return cfg;
}

std::vector<workload::JobSpec> small_workload() {
  // Enough maps that a mid-run crash always orphans work, small enough that
  // the suite stays fast.
  auto jobs = exp::job_batch(workload::AppKind::kWordcount, 64.0 * 24, 2, 3);
  jobs[1].submit_time = 40.0;
  jobs[2].submit_time = 80.0;
  return jobs;
}

TEST(FaultRecovery, EAntCompletesAllJobsThroughMidRunCrash) {
  exp::RunConfig cfg = faulted_config();
  // Down long past the expiry window: the loss must be detected and the
  // orphaned work re-executed while the machine is still dark.
  cfg.faults.crash_for(0, 60.0, 400.0);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
  run.submit(small_workload());
  run.execute();

  auto& jt = run.job_tracker();
  EXPECT_EQ(jt.jobs_completed(), 3u);
  EXPECT_EQ(jt.jobs_failed(), 0u);
  for (mr::JobId id = 0; id < jt.num_jobs(); ++id) {
    EXPECT_TRUE(jt.job(id).complete());
  }
  // The crash orphaned running attempts (and usually finished map outputs).
  EXPECT_GT(jt.killed_attempts(), 0u);
  EXPECT_GT(jt.wasted_task_seconds(), 0.0);
  ASSERT_FALSE(jt.recovery_times().empty());
  for (Seconds r : jt.recovery_times()) EXPECT_GT(r, 0.0);

  const auto m = run.metrics();
  EXPECT_GT(m.wasted_energy, 0.0);
  EXPECT_LT(m.wasted_energy, m.total_energy);
  EXPECT_GT(m.mean_recovery_time(), 0.0);
}

TEST(FaultRecovery, ExpiryDeclaresLossAndEAntFloorsPheromoneRow) {
  exp::RunConfig cfg = faulted_config();
  const MachineId victim = 0;
  const Seconds crash_time = 60.0;
  const Seconds downtime = 400.0;
  cfg.faults.crash_for(victim, crash_time, downtime);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
  run.submit(small_workload());

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  auto* eant = run.eant();
  // Loss must be declared within one expiry window plus a heartbeat of the
  // crash — the sweep runs at heartbeat granularity.
  const Seconds detect_deadline = crash_time +
                                  cfg.job_tracker.tracker_expiry_window +
                                  2.0 * cfg.job_tracker.heartbeat_interval;
  bool checked_floor = false;
  while (!jt.all_done()) {
    ASSERT_TRUE(sim.step());
    if (sim.now() < crash_time) {
      EXPECT_TRUE(jt.tracker_available(victim));
    } else if (sim.now() > detect_deadline && !checked_floor &&
               !jt.tracker(victim).alive()) {
      EXPECT_TRUE(jt.tracker_lost(victim));
      EXPECT_FALSE(jt.tracker_available(victim));
      // Every active colony's trail at the dead machine sits at the floor:
      // E-Ant stopped steering work there.
      for (mr::JobId id : jt.active_jobs()) {
        if (!eant->pheromone().has_job(id)) continue;
        for (TaskKind kind : {TaskKind::kMap, TaskKind::kReduce}) {
          EXPECT_DOUBLE_EQ(eant->pheromone().trail(id, kind)[victim],
                           eant->pheromone().tau_min());
        }
      }
      checked_floor = true;
    }
  }
  EXPECT_TRUE(checked_floor) << "loss was never observed while jobs ran";
  // Heartbeats keep running after the workload drains; step past the
  // machine's repair and first post-restart heartbeat — the rejoin must
  // clear the lost flag and make the tracker schedulable again.
  const Seconds rejoin_deadline =
      crash_time + downtime + 2.0 * cfg.job_tracker.heartbeat_interval;
  while (sim.now() < rejoin_deadline) {
    ASSERT_TRUE(sim.step());
  }
  EXPECT_TRUE(jt.tracker(victim).alive());
  EXPECT_FALSE(jt.tracker_lost(victim));
  EXPECT_TRUE(jt.tracker_available(victim));
}

TEST(FaultRecovery, DeadMachineReceivesNoWorkWhileLost) {
  exp::RunConfig cfg = faulted_config();
  const MachineId victim = 0;
  cfg.faults.crash_for(victim, 60.0, 400.0);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
  run.submit(small_workload());

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  while (!jt.all_done()) {
    ASSERT_TRUE(sim.step());
    if (!jt.tracker(victim).alive()) {
      ASSERT_EQ(jt.tracker(victim).running(TaskKind::kMap), 0);
      ASSERT_EQ(jt.tracker(victim).running(TaskKind::kReduce), 0);
      ASSERT_EQ(jt.tracker(victim).free_slots(TaskKind::kMap), 0);
      ASSERT_EQ(jt.tracker(victim).free_slots(TaskKind::kReduce), 0);
    }
  }
  EXPECT_EQ(jt.jobs_failed(), 0u);
}

TEST(FaultRecovery, FastRestartBeforeExpiryStillReclaimsLostWork) {
  // Down for well under the (default, 600 s) expiry window: the tracker is
  // never declared lost, but the crash evidence still forces a re-queue on
  // the first post-restart heartbeat.
  exp::RunConfig cfg;
  cfg.seed = 5;
  cfg.faults.crash_for(0, 60.0, 20.0);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFifo, cfg);
  run.submit(small_workload());

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  bool ever_lost = false;
  while (!jt.all_done()) {
    ASSERT_TRUE(sim.step());
    ever_lost = ever_lost || jt.tracker_lost(0);
  }
  EXPECT_FALSE(ever_lost);
  EXPECT_GT(jt.killed_attempts(), 0u);
  EXPECT_EQ(jt.jobs_failed(), 0u);
  EXPECT_EQ(jt.jobs_completed(), 3u);
}

TEST(FaultRecovery, TransientFailuresEverywhereFailEveryJob) {
  // Near-certain attempt death: the job burns its attempt budget and fails,
  // and the run still terminates cleanly (all_done counts failures).
  exp::RunConfig cfg;
  cfg.seed = 5;
  cfg.job_tracker.blacklist_threshold = 0;
  cfg.faults.task_failure_prob = 0.999;
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFifo, cfg);
  run.submit({exp::single_job(workload::AppKind::kWordcount, 64.0 * 4, 1)});
  run.execute();

  auto& jt = run.job_tracker();
  EXPECT_EQ(jt.jobs_failed(), 1u);
  EXPECT_EQ(jt.jobs_completed(), 0u);
  EXPECT_TRUE(jt.job(0).failed());
  EXPECT_GE(jt.failed_attempts(),
            static_cast<std::size_t>(cfg.job_tracker.max_attempts));
  const auto m = run.metrics();
  ASSERT_EQ(m.jobs.size(), 1u);
  EXPECT_TRUE(m.jobs[0].failed);
  EXPECT_EQ(m.jobs_failed, 1u);
  EXPECT_GT(m.wasted_energy, 0.0);
}

TEST(FaultRecovery, BlacklistSidelinesFlakyTrackerThenForgives) {
  exp::RunConfig cfg;
  cfg.seed = 5;
  cfg.job_tracker.blacklist_threshold = 2;
  cfg.job_tracker.blacklist_duration = 60.0;
  // A generous budget so the flaky machine's failures never kill the job.
  cfg.job_tracker.max_attempts = 50;
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFifo, cfg);

  const MachineId flaky = 1;
  run.job_tracker().set_attempt_fault_hook(
      [&](const mr::TaskSpec&, MachineId m) -> std::optional<double> {
        if (m != flaky) return std::nullopt;
        return 0.5;  // every attempt on the flaky machine dies halfway
      });
  run.submit(small_workload());

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  bool ever_blacklisted = false;
  bool ever_forgiven = false;
  bool ever_drained = false;
  bool drained = false;  // leftovers running at blacklist time have died
  while (!jt.all_done()) {
    ASSERT_TRUE(sim.step());
    if (jt.tracker_blacklisted(flaky)) {
      ever_blacklisted = true;
      ASSERT_FALSE(jt.tracker_available(flaky));
      // Blacklisting stops NEW work but does not kill running attempts;
      // once those die (the hook fails them all), the tracker must stay
      // idle for the rest of the sit-out.
      const int r = jt.tracker(flaky).running(TaskKind::kMap) +
                    jt.tracker(flaky).running(TaskKind::kReduce);
      if (drained) {
        ASSERT_EQ(r, 0);
      } else if (r == 0) {
        drained = true;
        ever_drained = true;
      }
    } else {
      if (ever_blacklisted) ever_forgiven = true;
      drained = false;
    }
  }
  EXPECT_TRUE(ever_blacklisted);
  EXPECT_TRUE(ever_drained) << "blacklisted tracker never went idle";
  EXPECT_TRUE(ever_forgiven) << "blacklist was never lifted during the run";
  EXPECT_EQ(jt.jobs_failed(), 0u);
  EXPECT_EQ(jt.jobs_completed(), 3u);
}

TEST(FaultRecovery, RecoveryTimesDrainAsRequeuedWorkCompletes) {
  exp::RunConfig cfg = faulted_config();
  cfg.faults.crash_for(0, 60.0, 400.0);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(small_workload());
  run.execute();

  auto& jt = run.job_tracker();
  ASSERT_FALSE(jt.recovery_times().empty());
  for (Seconds r : jt.recovery_times()) {
    EXPECT_GT(r, 0.0);
    // Re-execution cannot take longer than the whole run.
    EXPECT_LT(r, run.metrics().makespan);
  }
}

TEST(FaultRecovery, StochasticMachineFailuresRunToCompletion) {
  // MTBF/MTTR churn across the whole fleet: crashes and rejoins keep
  // happening and every job still finishes.
  exp::RunConfig cfg = faulted_config();
  cfg.faults.mtbf = 1500.0;
  cfg.faults.mttr = 60.0;
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
  run.submit(small_workload());
  run.execute();

  auto& jt = run.job_tracker();
  EXPECT_EQ(jt.jobs_completed() + jt.jobs_failed(), 3u);
  ASSERT_NE(run.fault_injector(), nullptr);
  EXPECT_GT(run.fault_injector()->crashes(), 0u);
}

// --- blacklist decay ---------------------------------------------------------

// Drives machine 1 into the blacklist with a burst of failures that then
// stops, and reports (blacklist time, forgiveness time, makespan).
std::tuple<Seconds, Seconds, Seconds> blacklist_window(Seconds decay_window) {
  exp::RunConfig cfg;
  cfg.seed = 5;
  cfg.job_tracker.blacklist_threshold = 2;
  cfg.job_tracker.blacklist_duration = 100000.0;  // effectively forever
  cfg.job_tracker.blacklist_decay_window = decay_window;
  cfg.job_tracker.max_attempts = 50;
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFifo, cfg);

  const MachineId flaky = 1;
  bool burst_over = false;
  run.job_tracker().set_attempt_fault_hook(
      [&](const mr::TaskSpec&, MachineId m) -> std::optional<double> {
        if (m != flaky || burst_over) return std::nullopt;
        return 0.5;
      });
  auto jobs = exp::job_batch(workload::AppKind::kWordcount, 64.0 * 24, 2, 4);
  jobs[2].submit_time = 200.0;
  jobs[3].submit_time = 400.0;
  run.submit(jobs);

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  Seconds blacklisted_at = -1.0, forgiven_at = -1.0;
  while (!jt.all_done()) {
    EXPECT_TRUE(sim.step());
    if (blacklisted_at < 0.0 && jt.tracker_blacklisted(flaky)) {
      blacklisted_at = sim.now();
      burst_over = true;  // the machine behaves from here on
    }
    if (blacklisted_at >= 0.0 && forgiven_at < 0.0 &&
        !jt.tracker_blacklisted(flaky)) {
      forgiven_at = sim.now();
    }
  }
  return {blacklisted_at, forgiven_at, sim.now()};
}

TEST(BlacklistDecay, DecayWindowForgivesLongBeforeBlacklistDuration) {
  const auto [listed, forgiven, makespan] = blacklist_window(60.0);
  ASSERT_GE(listed, 0.0) << "flaky tracker was never blacklisted";
  ASSERT_GE(forgiven, 0.0) << "decay never lifted the blacklist";
  // Two failures halve to 1 < threshold within a window or two — forgiveness
  // must come from decay (a handful of windows), not the 100000 s duration.
  EXPECT_LT(forgiven - listed, 5 * 60.0);
  EXPECT_LT(forgiven, makespan);
}

TEST(BlacklistDecay, RegressionZeroWindowKeepsPreDecayPermanence) {
  // decay_window = 0 restores the pre-decay contract: with a blacklist
  // duration longer than the run, the sidelined tracker is never forgiven.
  const auto [listed, forgiven, makespan] = blacklist_window(0.0);
  ASSERT_GE(listed, 0.0) << "flaky tracker was never blacklisted";
  EXPECT_LT(listed, makespan);
  EXPECT_LT(forgiven, 0.0) << "blacklist lifted despite decay being disabled";
}

// --- blacklist x quarantine interaction --------------------------------------

TEST(BlacklistQuarantine, RejoinWaitsForBothSuspensionsToClear) {
  // Regression for the state-priority rule: a node can be blacklisted
  // (fail-stop suspicion) and quarantined (fail-slow suspicion) at once, and
  // the decay of ONE must not hand it work while the other still stands.
  const MachineId victim = 1;
  exp::RunConfig cfg;
  cfg.seed = 5;
  cfg.job_tracker.blacklist_threshold = 2;
  cfg.job_tracker.blacklist_duration = 100000.0;  // only decay forgives
  // Wide enough that the victim's two mid-flight failures land inside ONE
  // window (they spread out because the limp stretches each attempt by a
  // different amount), yet still far shorter than the quarantine's decay.
  cfg.job_tracker.blacklist_decay_window = 90.0;
  cfg.job_tracker.health_min_samples = 2;
  cfg.job_tracker.quarantine_decay_window = 120.0;  // clears after blacklist
  cfg.job_tracker.max_attempts = 50;
  // The victim limps (driving its health down) while its attempts also die
  // halfway (driving its failure counter up).
  cfg.faults.slow_for(victim, 5.0, 120.0, 0.2, 0.5);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);

  bool burst_over = false;
  run.job_tracker().set_attempt_fault_hook(
      [&](const mr::TaskSpec&, MachineId m) -> std::optional<double> {
        if (m != victim || burst_over) return std::nullopt;
        return 0.5;
      });
  auto jobs = exp::job_batch(workload::AppKind::kWordcount, 64.0 * 24, 2, 5);
  jobs[1].submit_time = 40.0;
  jobs[2].submit_time = 80.0;
  jobs[3].submit_time = 200.0;
  jobs[4].submit_time = 320.0;
  run.submit(jobs);

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  bool ever_both = false;
  bool both_cleared = false;
  bool worked_after_clear = false;
  bool drained = false;
  while (!jt.all_done()) {
    ASSERT_TRUE(sim.step());
    const bool bl = jt.tracker_blacklisted(victim);
    const bool qu = jt.tracker_quarantined(victim);
    if (bl && qu) {
      ever_both = true;
      burst_over = true;  // both mechanisms latched; stop injecting
    }
    const int running = jt.tracker(victim).running(TaskKind::kMap) +
                        jt.tracker(victim).running(TaskKind::kReduce);
    if (bl || qu) {
      // Any standing suspicion blocks work — in particular during the
      // window where one of the two has already decayed.
      EXPECT_FALSE(jt.tracker_available(victim));
      if (drained) {
        EXPECT_EQ(running, 0)
            << "suspended node received work (bl=" << bl << " qu=" << qu
            << ") at t=" << sim.now();
      } else if (running == 0) {
        drained = true;
      }
    } else {
      drained = false;
      if (ever_both) {
        both_cleared = true;
        EXPECT_TRUE(jt.tracker_available(victim));
        if (running > 0) worked_after_clear = true;
      }
    }
  }
  EXPECT_TRUE(ever_both) << "blacklist and quarantine never overlapped";
  EXPECT_TRUE(both_cleared) << "the suspensions never both decayed";
  EXPECT_TRUE(worked_after_clear)
      << "victim never received work after both suspensions cleared";
  EXPECT_EQ(jt.jobs_failed(), 0u);
  EXPECT_EQ(jt.jobs_completed(), 5u);
}

TEST(BlacklistDecay, SpeculativeFailureReentersDecayedCounter) {
  // A decayed (forgiven) node is trusted with a speculative clone; the clone
  // fails.  That failure must land in the node's decayed counter like any
  // other — pushing it straight back over the threshold.
  const MachineId flaky = 1;
  exp::RunConfig cfg;
  cfg.seed = 5;
  cfg.job_tracker.blacklist_threshold = 2;
  cfg.job_tracker.blacklist_duration = 100000.0;
  cfg.job_tracker.blacklist_decay_window = 60.0;
  cfg.job_tracker.max_attempts = 50;
  cfg.job_tracker.speculative_execution = false;  // clones by hand only
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);

  // Phase 1 hook: every attempt on the flaky machine dies halfway, until the
  // blacklist latches.  Phase 2 hook: only the chosen speculative clone dies.
  bool burst_over = false;
  std::optional<std::pair<mr::JobId, mr::TaskIndex>> doomed_clone;
  run.job_tracker().set_attempt_fault_hook(
      [&](const mr::TaskSpec& spec, MachineId m) -> std::optional<double> {
        if (m != flaky) return std::nullopt;
        if (!burst_over) return 0.5;
        if (doomed_clone && spec.kind == TaskKind::kMap &&
            spec.job == doomed_clone->first &&
            spec.index == doomed_clone->second) {
          // Die almost immediately: the clone must fail before its original
          // completes (which would cancel it) and before the next decay
          // window halves the forgiven counter 1 -> 0.
          return 0.05;
        }
        return std::nullopt;
      });
  run.submit(small_workload());

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  bool forgiven = false;
  bool clone_launched = false;
  bool reblacklisted = false;
  while (!jt.all_done()) {
    ASSERT_TRUE(sim.step());
    if (!burst_over) {
      if (jt.tracker_blacklisted(flaky)) burst_over = true;
      continue;
    }
    if (!forgiven) {
      forgiven = !jt.tracker_blacklisted(flaky);  // decay halved 2 -> 1
      continue;
    }
    if (!clone_launched) {
      if (jt.tracker(flaky).free_slots(TaskKind::kMap) <= 0) continue;
      // Any running, unspeculated map whose original lives elsewhere.
      for (mr::JobId id : jt.active_jobs()) {
        const mr::JobState& js = jt.job(id);
        for (mr::TaskIndex i = 0; i < js.num_maps(); ++i) {
          if (js.status(TaskKind::kMap, i) != mr::TaskStatus::kRunning) {
            continue;
          }
          if (js.is_speculative(TaskKind::kMap, i)) continue;
          if (jt.tracker(flaky).is_running(id, TaskKind::kMap, i)) continue;
          doomed_clone = {{id, i}};
          if (jt.start_speculative(id, TaskKind::kMap, i,
                                   jt.tracker(flaky))) {
            clone_launched = true;
          } else {
            doomed_clone.reset();
          }
          break;
        }
        if (clone_launched) break;
      }
      continue;
    }
    if (jt.tracker_blacklisted(flaky)) reblacklisted = true;
  }
  EXPECT_TRUE(burst_over) << "flaky tracker was never blacklisted";
  EXPECT_TRUE(forgiven) << "decay never forgave the first blacklist";
  EXPECT_TRUE(clone_launched) << "no speculative clone could be placed";
  EXPECT_TRUE(reblacklisted)
      << "the failed clone did not re-enter the decayed counter";
  EXPECT_EQ(jt.jobs_failed(), 0u);
  EXPECT_EQ(jt.jobs_completed(), 3u);
}

// --- restart-anchored stochastic crash resampling ----------------------------

TEST(FaultInjector, RestartResamplesCrashDrawCausally) {
  // A scripted crash + recovery lands in the middle of a machine's pending
  // stochastic crash draw.  The pre-crash draw must be cancelled (not fire
  // into the downtime or instantly after recovery): every transition in the
  // log must strictly alternate down/up per machine with increasing times —
  // the failure process is re-anchored at each restart.
  sim::Simulator sim;
  sim::FaultPlan plan;
  plan.mtbf = 300.0;
  plan.mttr = 40.0;
  plan.crash_for(0, 50.0, 30.0).crash_for(1, 120.0, 60.0);
  sim::FaultInjector inj(sim, plan, Rng(9), 2);
  inj.set_handlers([](std::size_t) {}, [](std::size_t) {});
  inj.start();
  run_until(sim, 20000.0);

  ASSERT_GT(inj.log().size(), 4u);
  std::map<std::size_t, bool> up;  // per-machine expected-next-state
  std::map<std::size_t, Seconds> last;
  for (const auto& t : inj.log()) {
    if (up.count(t.machine) > 0) {
      EXPECT_NE(t.up, up[t.machine])
          << "non-alternating transition on machine " << t.machine << " at "
          << t.time;
      EXPECT_GT(t.time, last[t.machine]);
    } else {
      EXPECT_FALSE(t.up) << "first transition must be a crash";
    }
    up[t.machine] = t.up;
    last[t.machine] = t.time;
  }
  // The scripted outages themselves are in the log at their exact times.
  EXPECT_DOUBLE_EQ(inj.log()[0].time, 50.0);
  EXPECT_FALSE(inj.log()[0].up);
}

}  // namespace
}  // namespace eant
