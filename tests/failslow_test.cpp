// Fail-slow (gray failure) suite: slow-fault scripting and injection, the
// Machine's power-neutral performance multipliers, event-exact service-time
// re-estimation (audited via the work-integral and progress-monotonic
// invariants), limping-node detection (health EWMA -> quarantine ->
// release), the per-node speculation cap, and E-Ant's organic avoidance of
// limpers — their trails collapse through the Eq. 2 energy loop alone,
// without any explicit health signal.

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "cluster/catalog.h"
#include "cluster/machine.h"
#include "core/eant_scheduler.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "mapreduce/job_tracker.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "workload/job_spec.h"

namespace eant {
namespace {

using cluster::MachineId;
using mr::TaskKind;

// --- FaultPlan slow scripting ------------------------------------------------

TEST(FailSlowPlan, SlowForBuildsPairedTransitions) {
  sim::FaultPlan plan;
  EXPECT_FALSE(plan.has_slow_faults());
  plan.slow_for(3, 100.0, 50.0, 0.5, 0.8);
  EXPECT_TRUE(plan.has_slow_faults());
  EXPECT_TRUE(plan.enabled());
  ASSERT_EQ(plan.slow_events.size(), 2u);
  EXPECT_EQ(plan.slow_events[0].machine, 3u);
  EXPECT_DOUBLE_EQ(plan.slow_events[0].time, 100.0);
  EXPECT_DOUBLE_EQ(plan.slow_events[0].cpu_factor, 0.5);
  EXPECT_DOUBLE_EQ(plan.slow_events[0].io_factor, 0.8);
  EXPECT_DOUBLE_EQ(plan.slow_events[1].time, 150.0);
  EXPECT_DOUBLE_EQ(plan.slow_events[1].cpu_factor, 1.0);
  EXPECT_DOUBLE_EQ(plan.slow_events[1].io_factor, 1.0);
}

TEST(FailSlowPlan, RotRampsDownThenSnapsBack) {
  sim::FaultPlan plan;
  plan.rot(1, 100.0, 80.0, 0.6, 4);
  // Four equal-time degradation steps plus the restore.
  ASSERT_EQ(plan.slow_events.size(), 5u);
  for (int s = 1; s <= 4; ++s) {
    const auto& e = plan.slow_events[s - 1];
    EXPECT_EQ(e.machine, 1u);
    EXPECT_DOUBLE_EQ(e.time, 100.0 + 80.0 * (s - 1) / 4);
    EXPECT_DOUBLE_EQ(e.cpu_factor, 1.0 + s / 4.0 * (0.6 - 1.0));
    EXPECT_DOUBLE_EQ(e.io_factor, 1.0);
  }
  // The ramp ends exactly at the final factor, then full speed returns.
  EXPECT_DOUBLE_EQ(plan.slow_events[3].cpu_factor, 0.6);
  EXPECT_DOUBLE_EQ(plan.slow_events[4].time, 180.0);
  EXPECT_DOUBLE_EQ(plan.slow_events[4].cpu_factor, 1.0);
}

TEST(FailSlowPlan, StochasticSlowKnobEnables) {
  sim::FaultPlan plan;
  plan.slow_mtbf = 2000.0;
  plan.slow_mttr = 100.0;
  plan.slow_cpu_factor = 0.5;
  EXPECT_TRUE(plan.has_slow_faults());
  EXPECT_TRUE(plan.enabled());
}

// --- FaultInjector -----------------------------------------------------------

void run_until(sim::Simulator& sim, Seconds horizon) {
  while (sim.now() < horizon) {
    if (!sim.step()) break;
  }
}

TEST(FailSlowInjector, ScriptedSlowTransitionsFireAndRestore) {
  sim::Simulator sim;
  sim::FaultPlan plan;
  plan.slow_for(1, 10.0, 20.0, 0.5, 0.8);
  sim::FaultInjector inj(sim, plan, Rng(7), 2);
  inj.set_handlers([](std::size_t) {}, [](std::size_t) {});
  std::vector<std::tuple<std::size_t, double, double>> seen;
  inj.set_slow_handler([&](std::size_t m, double cpu, double io) {
    seen.emplace_back(m, cpu, io);
  });
  inj.start();
  EXPECT_DOUBLE_EQ(inj.cpu_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(inj.io_factor(1), 1.0);

  run_until(sim, 100.0);

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_tuple(std::size_t{1}, 0.5, 0.8));
  EXPECT_EQ(seen[1], std::make_tuple(std::size_t{1}, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(inj.cpu_factor(1), 1.0);  // restored
  EXPECT_EQ(inj.slow_faults(), 1u);          // one degrading transition
  ASSERT_EQ(inj.slow_log().size(), 2u);
  EXPECT_DOUBLE_EQ(inj.slow_log()[0].time, 10.0);
  EXPECT_DOUBLE_EQ(inj.slow_log()[0].cpu_factor, 0.5);
  EXPECT_DOUBLE_EQ(inj.slow_log()[1].time, 30.0);
  EXPECT_DOUBLE_EQ(inj.slow_log()[1].cpu_factor, 1.0);
}

TEST(FailSlowInjector, StochasticEpisodesDeterministicPerSeed) {
  auto collect = [](std::uint64_t seed) {
    sim::Simulator sim;
    sim::FaultPlan plan;
    plan.slow_mtbf = 400.0;
    plan.slow_mttr = 60.0;
    plan.slow_cpu_factor = 0.5;
    plan.slow_io_factor = 0.7;
    sim::FaultInjector inj(sim, plan, Rng(seed), 4);
    inj.set_handlers([](std::size_t) {}, [](std::size_t) {});
    inj.set_slow_handler([](std::size_t, double, double) {});
    inj.start();
    run_until(sim, 5000.0);
    return inj.slow_log();
  };

  const auto a = collect(42);
  const auto b = collect(42);
  const auto c = collect(43);

  ASSERT_FALSE(a.empty()) << "slow_mtbf=400 over 5000 s must produce episodes";
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].machine, b[i].machine);
    EXPECT_DOUBLE_EQ(a[i].cpu_factor, b[i].cpu_factor);
    // Episodes only ever toggle between the configured limp and full speed
    // (both copied verbatim from the plan, never through arithmetic).
    EXPECT_TRUE(a[i].cpu_factor == 0.5 || a[i].cpu_factor == 1.0);  // lint-ok: float-eq
  }
  ASSERT_FALSE(c.empty());
  EXPECT_NE(a.front().time, c.front().time);
}

// --- Machine perf multipliers ------------------------------------------------

TEST(FailSlowMachine, StretchArithmeticIsExact) {
  sim::Simulator sim;
  cluster::Machine m(sim, 0, cluster::catalog::desktop());

  // Healthy: the fast path returns the literal 1.0 and the effective runtime
  // IS the nominal runtime (bit-identity of the fault-free path).
  EXPECT_EQ(m.stretch_for(10.0, 50.0), 1.0);
  EXPECT_EQ(m.effective_task_runtime(10.0, 50.0),
            m.type().task_runtime(10.0, 50.0));

  // A pure-CPU task under a halved CPU takes exactly twice as long.
  m.set_perf_factors(0.5, 1.0);
  EXPECT_DOUBLE_EQ(m.stretch_for(10.0, 0.0), 2.0);
  // A pure-IO task is untouched by a CPU-only limp.
  EXPECT_DOUBLE_EQ(m.stretch_for(0.0, 50.0), 1.0);
  // Both factors halved: every phase doubles, whatever the mix.
  m.set_perf_factors(0.5, 0.5);
  EXPECT_DOUBLE_EQ(m.stretch_for(10.0, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(m.effective_task_runtime(10.0, 50.0),
                   2.0 * m.type().task_runtime(10.0, 50.0));

  // Recovery restores the exact fast path.
  m.set_perf_factors(1.0, 1.0);
  EXPECT_EQ(m.stretch_for(10.0, 50.0), 1.0);
}

TEST(FailSlowMachine, LimpIsPowerNeutral) {
  // The wasted-energy signature of a gray failure: the limping machine draws
  // the same power for its hosted demand while every task takes longer.
  sim::Simulator sim;
  cluster::Machine m(sim, 0, cluster::catalog::desktop());
  m.adjust_demand(2.0);
  const Watts healthy_power = m.power();
  const Seconds healthy_runtime = m.effective_task_runtime(10.0, 50.0);

  m.set_perf_factors(0.4, 0.5);
  EXPECT_DOUBLE_EQ(m.power(), healthy_power);
  EXPECT_DOUBLE_EQ(m.utilization(), 2.0 / m.type().cores);
  EXPECT_GT(m.effective_task_runtime(10.0, 50.0), healthy_runtime);
  // Same power x longer runtime = more joules per task, which is exactly
  // what the bench's wasted-energy column measures.
}

// --- end-to-end through the exp harness --------------------------------------

std::vector<workload::JobSpec> limp_workload(int extra_jobs = 0) {
  auto jobs =
      exp::job_batch(workload::AppKind::kWordcount, 64.0 * 24, 2, 3 + extra_jobs);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    jobs[i].submit_time = 40.0 * static_cast<double>(i);
  }
  return jobs;
}

TEST(FailSlowRun, AuditedRunSurvivesLimpRotAndStochasticEpisodes) {
  // The auditor is the oracle for event-exact re-estimation: every stretch
  // and re-rate of an in-flight attempt must keep the work integral
  // consistent and progress monotonic, or the run reports a violation.
  auto run_once = [] {
    exp::RunConfig cfg;
    cfg.seed = 7;
    cfg.noise = mr::NoiseConfig::typical();
    cfg.audit.enabled = true;
    cfg.faults.slow_for(1, 100.0, 300.0, 0.4, 0.6);
    cfg.faults.rot(5, 150.0, 200.0, 0.5);
    cfg.faults.slow_mtbf = 1500.0;
    cfg.faults.slow_mttr = 120.0;
    cfg.faults.slow_cpu_factor = 0.6;
    exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
    run.submit(limp_workload(1));
    run.execute();
    return run.metrics();
  };

  const exp::RunMetrics m = run_once();
  EXPECT_TRUE(m.audited);
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  EXPECT_EQ(m.jobs_failed, 0u);
  // The plan actually bit: the scripted limp and rot alone degrade 5 times.
  EXPECT_GE(m.perf_faults, 5u);

  // Slow faults are part of the deterministic event stream: bit-identical
  // digests on a re-run.
  const exp::RunMetrics m2 = run_once();
  EXPECT_EQ(m.determinism_digest, m2.determinism_digest);
  EXPECT_EQ(m.perf_faults, m2.perf_faults);
}

TEST(FailSlowRun, FaultFreeDigestImmuneToDetectionKnobs) {
  // The whole detection stack (progress rates -> health EWMA -> quarantine)
  // must be inert on a healthy fleet: a healthy progress rate is exactly
  // 1.0, so the EWMA never moves and no knob setting can change a single
  // scheduling decision fault-free.
  auto digest = [](double threshold, double alpha, int min_samples) {
    exp::RunConfig cfg;
    cfg.seed = 11;
    cfg.noise = mr::NoiseConfig::typical();
    cfg.audit.enabled = true;
    cfg.job_tracker.quarantine_threshold = threshold;
    if (alpha > 0.0) cfg.job_tracker.health_ewma_alpha = alpha;
    cfg.job_tracker.health_min_samples = min_samples;
    exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
    run.submit(limp_workload());
    run.execute();
    return run.metrics().determinism_digest;
  };

  const auto defaults = digest(0.55, 0.25, 4);
  EXPECT_EQ(defaults, digest(0.0, 0.25, 4));   // detection off entirely
  EXPECT_EQ(defaults, digest(0.55, 0.9, 1));   // hair-trigger detection
}

TEST(FailSlowRun, QuarantineLifecycleDetectsAndReleasesLimper) {
  const MachineId victim = 1;
  exp::RunConfig cfg;
  cfg.seed = 5;
  cfg.job_tracker.health_min_samples = 3;
  cfg.job_tracker.quarantine_decay_window = 60.0;
  cfg.faults.slow_for(victim, 30.0, 150.0, 0.2, 0.5);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(limp_workload(1));

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  bool ever_quarantined = false;
  bool ever_released = false;
  while (!jt.all_done()) {
    ASSERT_TRUE(sim.step());
    if (jt.tracker_quarantined(victim)) {
      ever_quarantined = true;
      // Quarantine is the fail-SLOW state: the node is alive and
      // heartbeating — it is neither lost nor blacklisted — yet receives no
      // new work.
      EXPECT_TRUE(jt.tracker(victim).alive());
      EXPECT_FALSE(jt.tracker_lost(victim));
      EXPECT_FALSE(jt.tracker_blacklisted(victim));
      EXPECT_FALSE(jt.tracker_available(victim));
      EXPECT_LT(jt.node_health(victim), 1.0);
    } else if (ever_quarantined) {
      ever_released = true;
    }
  }
  EXPECT_TRUE(ever_quarantined) << "limping node was never quarantined";
  EXPECT_TRUE(ever_released) << "quarantine never released the healed node";
  EXPECT_GE(jt.quarantine_episodes(), 1u);
  EXPECT_EQ(jt.jobs_failed(), 0u);

  const exp::RunMetrics m = run.metrics();
  EXPECT_EQ(m.quarantine_episodes, jt.quarantine_episodes());
  EXPECT_EQ(m.perf_faults, 1u);
}

// Finds two distinct map tasks running on `victim` and issues one
// speculative clone of each on two other machines; returns the two
// start_speculative results.  Used to pin the per-node clone cap.
std::pair<bool, bool> speculate_two_from_victim(int cap) {
  const MachineId victim = 1;
  exp::RunConfig cfg;
  cfg.seed = 5;
  cfg.job_tracker.speculative_execution = false;  // manual control only
  cfg.job_tracker.max_speculative_per_node = cap;
  cfg.job_tracker.quarantine_threshold = 0.0;  // keep the victim available
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kFair, cfg);
  run.submit(limp_workload());

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  bool limped = false;
  while (!jt.all_done()) {
    if (!sim.step()) break;
    if (!limped && sim.now() > 30.0) {
      // What the injector's slow handler would do, minus the timing
      // dependence: the victim crawls from here on.
      jt.tracker(victim).set_perf_factors(0.25, 0.5);
      limped = true;
    }
    if (!limped) continue;

    // Two distinct running, unspeculated maps whose original lives on the
    // victim.
    std::vector<std::pair<mr::JobId, mr::TaskIndex>> targets;
    for (mr::JobId id : jt.active_jobs()) {
      const mr::JobState& js = jt.job(id);
      for (mr::TaskIndex i = 0; i < js.num_maps(); ++i) {
        if (!jt.tracker(victim).is_running(id, TaskKind::kMap, i)) continue;
        if (js.is_speculative(TaskKind::kMap, i)) continue;
        targets.emplace_back(id, i);
      }
    }
    // Two healthy machines with a free map slot to host the clones.
    std::vector<MachineId> hosts;
    for (MachineId h = 0; h < run.cluster().size(); ++h) {
      if (h == victim || !jt.tracker_available(h)) continue;
      if (jt.tracker(h).free_slots(TaskKind::kMap) > 0) hosts.push_back(h);
    }
    if (targets.size() < 2 || hosts.size() < 2) continue;

    const bool first = jt.start_speculative(targets[0].first, TaskKind::kMap,
                                            targets[0].second,
                                            jt.tracker(hosts[0]));
    const bool second = jt.start_speculative(targets[1].first, TaskKind::kMap,
                                             targets[1].second,
                                             jt.tracker(hosts[1]));
    return {first, second};
  }
  ADD_FAILURE() << "never found two clone targets plus two free hosts";
  return {false, false};
}

TEST(FailSlowRun, SpeculativeClonesPerNodeAreCapped) {
  // cap=1: the first clone of a victim-hosted original launches, the second
  // is refused while the first still runs.
  const auto [first_capped, second_capped] = speculate_two_from_victim(1);
  EXPECT_TRUE(first_capped);
  EXPECT_FALSE(second_capped);

  // cap=0 is stock Hadoop: unlimited.
  const auto [first_free, second_free] = speculate_two_from_victim(0);
  EXPECT_TRUE(first_free);
  EXPECT_TRUE(second_free);
}

// --- E-Ant vs the limper -----------------------------------------------------

TEST(EAntFailSlow, TrailCollapsesOnLimperWithoutHealthSignal) {
  // No quarantine, no speculation, no slow-completion feedback: the ONLY
  // force acting on the limper is E-Ant's energy loop.  Its tasks burn more
  // Eq. 2 energy (same power, longer runtime), deposits shrink, evaporation
  // does the rest — the trail at the limper must fall below a healthy
  // machine of the same type.  The pair comes from the energy-efficient
  // t110 group: the desktops' trails sit at the pheromone floor under E-Ant
  // regardless of health (they are energy-hogs), which would mask the
  // within-type contrast this test is about.
  const MachineId victim = 8;  // t110
  const MachineId twin = 9;    // t110
  exp::RunConfig cfg;
  cfg.seed = 11;
  cfg.eant.control_interval = 60.0;
  cfg.eant.negative_feedback = false;
  // Machine-level exchange averages deposits across a homogeneous group —
  // and a gray failure is precisely a machine that silently stops being
  // homogeneous with its twins.  Disable it so the per-machine signal the
  // energy loop produces is visible in the trail (with it on, the victim's
  // inflated task energy is smeared across all desktops).
  cfg.eant.machine_exchange = false;
  cfg.job_tracker.quarantine_threshold = 0.0;
  cfg.job_tracker.speculative_execution = false;
  cfg.faults.slow_for(victim, 30.0, 1.0e6, 0.3, 0.5);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
  // Long-lived colonies: 3 x 96 maps over 64 map slots keeps every job
  // alive across many control intervals, so the deposit/evaporation loop has
  // time to starve the limper's trails.
  run.submit(exp::job_batch(workload::AppKind::kWordcount, 64.0 * 96, 8, 3));

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  auto* eant = run.eant();
  ASSERT_NE(eant, nullptr);

  // Last observed (victim, twin) map-trail pair per colony, refreshed every
  // step while the colony is still saturated (undispatched maps remain).
  // The drain phase is deliberately excluded: once the backlog empties, the
  // healthy twin goes idle (no completions, no deposits) while the limper
  // still grinds its stragglers, which would invert the signal for reasons
  // that have nothing to do with learning.
  std::map<mr::JobId, std::pair<double, double>> last_trail;
  while (!jt.all_done()) {
    ASSERT_TRUE(sim.step());
    if (eant->intervals() < 2) continue;
    for (mr::JobId id : jt.active_jobs()) {
      if (!eant->pheromone().has_job(id)) continue;
      const mr::JobState& js = jt.job(id);
      if (!js.has_pending(TaskKind::kMap)) continue;
      const auto& trail = eant->pheromone().trail(id, TaskKind::kMap);
      last_trail[id] = {trail[victim], trail[twin]};
    }
  }
  ASSERT_FALSE(last_trail.empty()) << "no colony reached a sampleable state";
  for (const auto& [id, pair] : last_trail) {
    EXPECT_LT(pair.first, pair.second)
        << "job " << id << ": limper trail did not collapse";
  }
  const std::size_t done_victim =
      jt.tracker(victim).completed(TaskKind::kMap) +
      jt.tracker(victim).completed(TaskKind::kReduce);
  const std::size_t done_twin = jt.tracker(twin).completed(TaskKind::kMap) +
                                jt.tracker(twin).completed(TaskKind::kReduce);
  EXPECT_LT(done_victim, done_twin);
}

// Completed-task share of the 4 limpers in the *steady state*: tasks
// finished after `warmup` seconds, so E-Ant's learning phase (during which
// it assigns like any other scheduler) does not dilute the comparison.
double limper_task_share(exp::SchedulerKind kind, Seconds warmup) {
  const std::vector<MachineId> limpers = {1, 5, 9, 13};
  exp::RunConfig cfg;
  cfg.seed = 7;
  cfg.eant.control_interval = 60.0;
  cfg.eant.negative_feedback = false;
  // No detection stack for either side: the comparison isolates what the
  // assignment policy itself does with a silently limping minority.
  cfg.job_tracker.quarantine_threshold = 0.0;
  cfg.job_tracker.speculative_execution = false;
  for (MachineId v : limpers) cfg.faults.slow_for(v, 30.0, 1.0e7, 0.3, 0.5);
  exp::Run run(exp::paper_fleet(), kind, cfg);
  // 384 maps over 64 map slots: the fleet stays oversubscribed for many
  // control intervals, so a blind scheduler keeps feeding the limpers as
  // long as they have free slots while E-Ant has time to learn.
  run.submit(exp::job_batch(workload::AppKind::kWordcount, 64.0 * 96, 8, 4));

  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  const std::size_t machines = run.cluster().size();
  std::vector<std::size_t> at_warmup(machines, 0);
  bool snapshotted = false;
  auto completed = [&](MachineId m) {
    return jt.tracker(m).completed(TaskKind::kMap) +
           jt.tracker(m).completed(TaskKind::kReduce);
  };
  while (!jt.all_done()) {
    EXPECT_TRUE(sim.step());
    if (!snapshotted && sim.now() >= warmup) {
      for (MachineId m = 0; m < machines; ++m) at_warmup[m] = completed(m);
      snapshotted = true;
    }
  }
  EXPECT_TRUE(snapshotted) << "run finished before the warmup elapsed";
  EXPECT_EQ(jt.jobs_failed(), 0u);
  std::size_t on_limpers = 0;
  std::size_t total = 0;
  for (MachineId m = 0; m < machines; ++m) {
    const std::size_t c = completed(m) - at_warmup[m];
    total += c;
    for (MachineId v : limpers) {
      if (v == m) on_limpers += c;
    }
  }
  EXPECT_GT(total, 0u);
  return static_cast<double>(on_limpers) / static_cast<double>(total);
}

TEST(EAntFailSlow, FourLimperShareFallsBelowFair) {
  // The PR's acceptance scenario: 4 of 16 machines limping at 30% CPU in an
  // oversubscribed run.  Fair keeps routing work proportionally to slots;
  // E-Ant's energy feedback starves the limpers' trails, so their share of
  // completed work must end up measurably below Fair's.  The comparison
  // window starts after 300 s — five control intervals — because before the
  // trails differentiate E-Ant assigns just like Fair does.
  const Seconds warmup = 300.0;
  const double fair = limper_task_share(exp::SchedulerKind::kFair, warmup);
  const double eant = limper_task_share(exp::SchedulerKind::kEAnt, warmup);
  EXPECT_GT(fair, 0.05) << "Fair stopped using the limpers entirely?";
  EXPECT_LT(eant, fair);
  EXPECT_LT(eant, 0.85 * fair) << "E-Ant's avoidance is not 'measurable'";
}

}  // namespace
}  // namespace eant
