// Unit tests for the common toolkit: RNG determinism and distributions,
// statistics (NRMSE, least squares, percentiles), table rendering, errors.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace eant {
namespace {

TEST(Error, CheckThrowsPrecondition) {
  EXPECT_THROW(EANT_CHECK(false, "boom"), PreconditionError);
  EXPECT_NO_THROW(EANT_CHECK(true, "fine"));
}

TEST(Error, AssertThrowsInvariant) {
  EXPECT_THROW(EANT_ASSERT(false, "bug"), InvariantError);
  EXPECT_NO_THROW(EANT_ASSERT(true, "fine"));
}

TEST(Error, MessageCarriesExpressionAndLocation) {
  try {
    EANT_CHECK(1 == 2, "custom detail");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("custom detail"), std::string::npos);
    EXPECT_NE(msg.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(minutes(5.0), 300.0);
  EXPECT_DOUBLE_EQ(kilojoules(2.5), 2500.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  Rng child1 = parent.fork(3);
  parent.uniform();  // consuming the parent must not change future forks
  Rng child2 = parent.fork(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(child1.uniform(), child2.uniform());
  }
}

TEST(Rng, ForkStreamsAreDistinct) {
  Rng parent(7);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
  EXPECT_THROW(rng.uniform(5.0, 2.0), PreconditionError);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(1, 4));
  EXPECT_EQ(seen, (std::set<std::int64_t>{1, 2, 3, 4}));
}

TEST(Rng, NormalMeanAndSigma) {
  Rng rng(5);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
  EXPECT_DOUBLE_EQ(rng.normal(3.0, 0.0), 3.0);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

TEST(Rng, ExponentialMean) {
  Rng rng(6);
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  EXPECT_THROW(rng.bernoulli(1.5), PreconditionError);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(8);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.015);
  EXPECT_NEAR(counts[3] / double(n), 0.6, 0.015);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(9);
  EXPECT_THROW(rng.weighted_index({}), PreconditionError);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), PreconditionError);
  EXPECT_THROW(rng.weighted_index({-1.0, 2.0}), PreconditionError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyAndSingle) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, NrmseExactMatchIsZero) {
  EXPECT_DOUBLE_EQ(nrmse({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(Stats, NrmseKnownValue) {
  // measured mean 2, rmse = sqrt(((1)^2+0+(1)^2)/3).
  const double expect = std::sqrt(2.0 / 3.0) / 2.0;
  EXPECT_NEAR(nrmse({1, 2, 3}, {2, 2, 2}), expect, 1e-12);
}

TEST(Stats, NrmseRejectsBadInput) {
  EXPECT_THROW(nrmse({}, {}), PreconditionError);
  EXPECT_THROW(nrmse({1.0}, {1.0, 2.0}), PreconditionError);
  EXPECT_THROW(nrmse({1.0, -1.0}, {0.0, 0.0}), PreconditionError);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 73), 5.0);
  EXPECT_THROW(percentile({}, 50), PreconditionError);
  EXPECT_THROW(percentile({1.0}, 101), PreconditionError);
}

TEST(Stats, LeastSquaresRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i <= 10; ++i) {
    x.push_back(i * 0.1);
    y.push_back(50.0 + 80.0 * i * 0.1);
  }
  const LineFit fit = least_squares(x, y);
  EXPECT_NEAR(fit.intercept, 50.0, 1e-9);
  EXPECT_NEAR(fit.slope, 80.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, LeastSquaresNoisyFitHasReasonableR2) {
  Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double xi = rng.uniform(0.0, 1.0);
    x.push_back(xi);
    y.push_back(40.0 + 100.0 * xi + rng.normal(0.0, 3.0));
  }
  const LineFit fit = least_squares(x, y);
  EXPECT_NEAR(fit.intercept, 40.0, 2.0);
  EXPECT_NEAR(fit.slope, 100.0, 4.0);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(Stats, LeastSquaresRejectsDegenerateInput) {
  EXPECT_THROW(least_squares({1.0}, {2.0}), PreconditionError);
  EXPECT_THROW(least_squares({1.0, 1.0}, {2.0, 3.0}), PreconditionError);
  EXPECT_THROW(least_squares({1.0, 2.0}, {2.0}), PreconditionError);
}

TEST(Stats, MeanAndVarianceOf) {
  EXPECT_DOUBLE_EQ(mean_of({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(variance_of({2, 2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(variance_of({1, 3}), 1.0);
  EXPECT_THROW(mean_of({}), PreconditionError);
}

TEST(TextTable, RendersAlignedRows) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", TextTable::num(1.5, 1)});
  t.add_row({"longer-name", "x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace eant
