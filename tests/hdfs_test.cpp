// Unit tests for the HDFS block-placement model: replication, block sizing,
// locality queries and placement balance.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "hdfs/namenode.h"

namespace eant::hdfs {
namespace {

TEST(NameNode, CreatesExpectedBlockCount) {
  NameNode nn(Rng(1), 8);
  const auto blocks = nn.create_file(256.0);  // 4 x 64 MB
  EXPECT_EQ(blocks.size(), 4u);
  for (BlockId b : blocks) EXPECT_DOUBLE_EQ(nn.block_size(b), 64.0);
}

TEST(NameNode, LastBlockMayBeShort) {
  NameNode nn(Rng(1), 8);
  const auto blocks = nn.create_file(100.0);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_DOUBLE_EQ(nn.block_size(blocks[0]), 64.0);
  EXPECT_DOUBLE_EQ(nn.block_size(blocks[1]), 36.0);
}

TEST(NameNode, TinyFileGetsOneBlock) {
  NameNode nn(Rng(1), 8);
  const auto blocks = nn.create_file(1.0);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_DOUBLE_EQ(nn.block_size(blocks[0]), 1.0);
}

TEST(NameNode, ReplicasAreDistinctMachines) {
  NameNode nn(Rng(2), 10, 3);
  const auto blocks = nn.create_file(64.0 * 50);
  for (BlockId b : blocks) {
    const auto& locs = nn.locations(b);
    EXPECT_EQ(locs.size(), 3u);
    const std::set<cluster::MachineId> unique(locs.begin(), locs.end());
    EXPECT_EQ(unique.size(), 3u);
    for (auto m : unique) EXPECT_LT(m, 10u);
  }
}

TEST(NameNode, ReplicationDegradesToClusterSize) {
  NameNode nn(Rng(3), 2, 3);
  EXPECT_EQ(nn.replication(), 2);
  const auto blocks = nn.create_file(64.0);
  EXPECT_EQ(nn.locations(blocks[0]).size(), 2u);
}

TEST(NameNode, IsLocalMatchesLocations) {
  NameNode nn(Rng(4), 6, 3);
  const auto blocks = nn.create_file(64.0);
  const auto& locs = nn.locations(blocks[0]);
  std::size_t local = 0;
  for (cluster::MachineId m = 0; m < 6; ++m) {
    if (nn.is_local(blocks[0], m)) ++local;
  }
  EXPECT_EQ(local, locs.size());
}

TEST(NameNode, PlacementIsTightlyBalanced) {
  NameNode nn(Rng(5), 8, 3);
  nn.create_file(64.0 * 4000);
  // 4000 blocks x 3 replicas over 8 nodes -> 1500 expected per node.  With
  // power-of-two-choices placement the node spread stays within a few
  // percent of the mean (uniform-random sampling drifted ~10x wider).
  const auto stats = nn.locality_stats();
  EXPECT_DOUBLE_EQ(stats.mean_per_node, 1500.0);
  EXPECT_LE(stats.node_spread(), 75u);  // 5% of the mean
  for (auto c : stats.blocks_per_node) {
    EXPECT_GT(c, 1425u);
    EXPECT_LT(c, 1575u);
  }
}

TEST(NameNode, LocalityStatsCountShortLastBlock) {
  NameNode nn(Rng(5), 4, 2);
  nn.create_file(100.0);  // one full block + one short (36 MB) block
  const auto stats = nn.locality_stats();
  std::size_t total = 0;
  for (auto c : stats.blocks_per_node) total += c;
  EXPECT_EQ(total, 4u);  // 2 blocks x 2 replicas, short block included
  EXPECT_DOUBLE_EQ(stats.mean_per_node, 1.0);
  EXPECT_EQ(stats.replicas_per_rack.size(), 1u);  // flat: everything rack 0
  EXPECT_EQ(stats.replicas_per_rack[0], 4u);
}

TEST(NameNode, RackAwarePlacementSpansExactlyTwoRacks) {
  // 8 nodes in 4 racks (round-robin: node n -> rack n % 4).  Hadoop's
  // default policy: replica 1 anywhere, replica 2 off-rack, replica 3 in
  // replica 2's rack — so each block's 3 replicas span exactly 2 racks.
  const std::vector<std::size_t> racks = {0, 1, 2, 3, 0, 1, 2, 3};
  NameNode nn(Rng(8), 8, 3, racks);
  EXPECT_EQ(nn.num_racks(), 4u);
  const auto blocks = nn.create_file(64.0 * 200);
  for (BlockId b : blocks) {
    const auto& locs = nn.locations(b);
    ASSERT_EQ(locs.size(), 3u);
    std::set<std::size_t> spanned;
    for (auto m : locs) spanned.insert(nn.rack_of(m));
    EXPECT_EQ(spanned.size(), 2u);
    // Replicas 2 and 3 share a rack that differs from replica 1's.
    EXPECT_NE(nn.rack_of(locs[0]), nn.rack_of(locs[1]));
    EXPECT_EQ(nn.rack_of(locs[1]), nn.rack_of(locs[2]));
  }
}

TEST(NameNode, RackAwarePlacementStaysBalanced) {
  const std::vector<std::size_t> racks = {0, 1, 2, 3, 0, 1, 2, 3};
  NameNode nn(Rng(9), 8, 3, racks);
  nn.create_file(64.0 * 2000);
  const auto stats = nn.locality_stats();
  // 2000 x 3 replicas over 8 nodes -> 750 per node; rack constraints narrow
  // the candidate pools, so allow a wider (but still tight) band than flat.
  EXPECT_DOUBLE_EQ(stats.mean_per_node, 750.0);
  EXPECT_LE(stats.node_spread(), 120u);
  ASSERT_EQ(stats.replicas_per_rack.size(), 4u);
  std::size_t rack_total = 0;
  for (auto c : stats.replicas_per_rack) rack_total += c;
  EXPECT_EQ(rack_total, 6000u);
}

TEST(NameNode, ThreeLevelLocalityMatchesRackAssignment) {
  const std::vector<std::size_t> racks = {0, 1, 0, 1};
  NameNode nn(Rng(10), 4, 2, racks);
  const auto blocks = nn.create_file(64.0);
  const BlockId b = blocks[0];
  for (cluster::MachineId m = 0; m < 4; ++m) {
    const Locality lv = nn.locality(b, m);
    if (nn.is_local(b, m)) {
      EXPECT_EQ(lv, Locality::kNodeLocal);
      continue;
    }
    bool rack_replica = false;
    for (auto r : nn.locations(b)) {
      if (nn.rack_of(r) == nn.rack_of(m)) rack_replica = true;
    }
    EXPECT_EQ(lv, rack_replica ? Locality::kRackLocal : Locality::kOffRack);
  }
}

TEST(NameNode, DeterministicForSameSeed) {
  NameNode a(Rng(6), 8), b(Rng(6), 8);
  const auto ba = a.create_file(64.0 * 20);
  const auto bb = b.create_file(64.0 * 20);
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(a.locations(ba[i]), b.locations(bb[i]));
  }
}

TEST(NameNode, RejectsBadInput) {
  EXPECT_THROW(NameNode(Rng(1), 0), PreconditionError);
  EXPECT_THROW(NameNode(Rng(1), 4, 0), PreconditionError);
  NameNode nn(Rng(1), 4);
  EXPECT_THROW(nn.create_file(0.0), PreconditionError);
  EXPECT_THROW(nn.create_file(64.0, 0.0), PreconditionError);
  EXPECT_THROW(nn.locations(999), PreconditionError);
  EXPECT_THROW(nn.block_size(999), PreconditionError);
}

TEST(NameNode, BlockIdsAreSequentialAcrossFiles) {
  NameNode nn(Rng(7), 4);
  const auto f1 = nn.create_file(64.0 * 2);
  const auto f2 = nn.create_file(64.0 * 3);
  EXPECT_EQ(f1, (std::vector<BlockId>{0, 1}));
  EXPECT_EQ(f2, (std::vector<BlockId>{2, 3, 4}));
  EXPECT_EQ(nn.num_blocks(), 5u);
}

// --- degraded mode -----------------------------------------------------------

// Drains the under-replication queue to completion, performing every copy
// instantly.  Returns the number of replicas created.
std::size_t drain_rereplication(NameNode& nn) {
  std::size_t copies = 0;
  while (auto work = nn.next_rereplication()) {
    nn.add_replica(work->block, work->target);
    ++copies;
  }
  return copies;
}

TEST(NameNodeDegraded, DatanodeDeathDropsReplicasAndQueuesBlocks) {
  NameNode nn(Rng(11), 8);
  const auto blocks = nn.create_file(64.0 * 50);
  const cluster::MachineId dead = 3;
  std::size_t hosted = nn.blocks_per_node()[dead];
  ASSERT_GT(hosted, 0u);
  nn.mark_datanode_dead(dead);
  EXPECT_FALSE(nn.datanode_alive(dead));
  EXPECT_TRUE(nn.mutated());
  EXPECT_EQ(nn.blocks_per_node()[dead], 0u);
  EXPECT_EQ(nn.under_replicated_count(), hosted);
  for (BlockId b : blocks) {
    const auto& locs = nn.locations(b);
    EXPECT_EQ(std::find(locs.begin(), locs.end(), dead), locs.end());
    if (locs.size() < kDefaultReplication) {
      EXPECT_TRUE(nn.queued_for_rereplication(b));
      EXPECT_TRUE(nn.rereplication_possible(b));
    }
  }
  // Idempotent: declaring the same node dead twice changes nothing.
  nn.mark_datanode_dead(dead);
  EXPECT_EQ(nn.under_replicated_count(), hosted);
}

TEST(NameNodeDegraded, RereplicationServesFewestLiveReplicasFirst) {
  NameNode nn(Rng(12), 8);
  nn.create_file(64.0 * 80);
  nn.mark_datanode_dead(1);
  nn.mark_datanode_dead(5);
  // Some blocks lost one replica, some lost two; none can be lost outright
  // with replication 3 and only two deaths.
  EXPECT_TRUE(nn.lost_blocks().empty());
  std::size_t last_live = 0;
  std::size_t served = 0;
  while (auto work = nn.next_rereplication()) {
    const std::size_t live = nn.live_replicas(work->block);
    EXPECT_GE(live, last_live)
        << "a healthier block was served before a more endangered one";
    // The source must hold the block; the target must not, and must be live.
    const auto& locs = nn.locations(work->block);
    EXPECT_NE(std::find(locs.begin(), locs.end(), work->source), locs.end());
    EXPECT_EQ(std::find(locs.begin(), locs.end(), work->target), locs.end());
    EXPECT_TRUE(nn.datanode_alive(work->target));
    last_live = live;
    nn.add_replica(work->block, work->target);
    ++served;
  }
  EXPECT_GT(served, 0u);
  EXPECT_EQ(nn.under_replicated_count(), 0u);
}

TEST(NameNodeDegraded, RereplicationRestoresRackSpread) {
  // 8 nodes in 2 racks.  Killing both replicas in one of a block's racks can
  // collapse the survivors into a single rack; the re-replication target
  // choice must restore the >= 2-rack spread.
  const std::vector<std::size_t> racks = {0, 0, 0, 0, 1, 1, 1, 1};
  NameNode nn(Rng(13), 8, 3, racks);
  const auto blocks = nn.create_file(64.0 * 120);
  nn.mark_datanode_dead(4);
  nn.mark_datanode_dead(5);
  drain_rereplication(nn);
  for (BlockId b : blocks) {
    const auto& locs = nn.locations(b);
    ASSERT_EQ(locs.size(), 3u);
    std::set<cluster::MachineId> nodes(locs.begin(), locs.end());
    EXPECT_EQ(nodes.size(), 3u) << "duplicate replica on one node";
    std::set<std::size_t> spanned;
    for (auto m : locs) spanned.insert(nn.rack_of(m));
    EXPECT_GE(spanned.size(), 2u) << "block " << b << " collapsed into one rack";
  }
}

TEST(NameNodeDegraded, RecoveryKeepsPlacementBalanced) {
  NameNode nn(Rng(14), 8);
  nn.create_file(64.0 * 400);
  nn.mark_datanode_dead(2);
  const std::size_t copies = drain_rereplication(nn);
  EXPECT_GT(copies, 0u);
  // 400 x 3 replicas over the 7 survivors; balanced target choice keeps the
  // spread a small fraction of the per-node mean (~171).
  const auto& counts = nn.blocks_per_node();
  std::size_t lo = nn.num_blocks(), hi = 0;
  for (cluster::MachineId n = 0; n < 8; ++n) {
    if (n == 2) continue;
    lo = std::min(lo, counts[n]);
    hi = std::max(hi, counts[n]);
  }
  EXPECT_LE(hi - lo, 60u) << "re-replication unbalanced the cluster";
}

TEST(NameNodeDegraded, LosingEveryReplicaRecordsPermanentLoss) {
  NameNode nn(Rng(15), 4, 3);
  const auto blocks = nn.create_file(64.0 * 10);
  // Kill three of four nodes: every block kept at most one replica, and any
  // block fully hosted on the dead trio is lost outright.
  nn.mark_datanode_dead(0);
  nn.mark_datanode_dead(1);
  nn.mark_datanode_dead(2);
  std::size_t lost = 0;
  for (BlockId b : blocks) {
    if (nn.block_lost(b)) {
      ++lost;
      EXPECT_EQ(nn.live_replicas(b), 0u);
      EXPECT_FALSE(nn.queued_for_rereplication(b));
      EXPECT_FALSE(nn.rereplication_possible(b));
      EXPECT_NE(std::find(nn.lost_blocks().begin(), nn.lost_blocks().end(), b),
                nn.lost_blocks().end());
    }
  }
  EXPECT_EQ(nn.lost_blocks().size(), lost);
  // Survivors sit on node 3 alone and have nowhere to copy to.
  EXPECT_EQ(nn.next_rereplication(), std::nullopt);
}

TEST(NameNodeDegraded, NewFilePlacementSkipsDeadNodes) {
  NameNode nn(Rng(16), 8);
  nn.mark_datanode_dead(6);
  const auto blocks = nn.create_file(64.0 * 60);
  for (BlockId b : blocks) {
    const auto& locs = nn.locations(b);
    EXPECT_EQ(std::find(locs.begin(), locs.end(), cluster::MachineId{6}),
              locs.end());
  }
  EXPECT_EQ(nn.blocks_per_node()[6], 0u);
  // Once the node rejoins it is eligible again, and as the emptiest node the
  // balanced placement immediately favours it.
  nn.mark_datanode_alive(6);
  nn.create_file(64.0 * 60);
  EXPECT_GT(nn.blocks_per_node()[6], 0u);
}

}  // namespace
}  // namespace eant::hdfs
