// Unit tests for the HDFS block-placement model: replication, block sizing,
// locality queries and placement balance.

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "hdfs/namenode.h"

namespace eant::hdfs {
namespace {

TEST(NameNode, CreatesExpectedBlockCount) {
  NameNode nn(Rng(1), 8);
  const auto blocks = nn.create_file(256.0);  // 4 x 64 MB
  EXPECT_EQ(blocks.size(), 4u);
  for (BlockId b : blocks) EXPECT_DOUBLE_EQ(nn.block_size(b), 64.0);
}

TEST(NameNode, LastBlockMayBeShort) {
  NameNode nn(Rng(1), 8);
  const auto blocks = nn.create_file(100.0);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_DOUBLE_EQ(nn.block_size(blocks[0]), 64.0);
  EXPECT_DOUBLE_EQ(nn.block_size(blocks[1]), 36.0);
}

TEST(NameNode, TinyFileGetsOneBlock) {
  NameNode nn(Rng(1), 8);
  const auto blocks = nn.create_file(1.0);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_DOUBLE_EQ(nn.block_size(blocks[0]), 1.0);
}

TEST(NameNode, ReplicasAreDistinctMachines) {
  NameNode nn(Rng(2), 10, 3);
  const auto blocks = nn.create_file(64.0 * 50);
  for (BlockId b : blocks) {
    const auto& locs = nn.locations(b);
    EXPECT_EQ(locs.size(), 3u);
    const std::set<cluster::MachineId> unique(locs.begin(), locs.end());
    EXPECT_EQ(unique.size(), 3u);
    for (auto m : unique) EXPECT_LT(m, 10u);
  }
}

TEST(NameNode, ReplicationDegradesToClusterSize) {
  NameNode nn(Rng(3), 2, 3);
  EXPECT_EQ(nn.replication(), 2);
  const auto blocks = nn.create_file(64.0);
  EXPECT_EQ(nn.locations(blocks[0]).size(), 2u);
}

TEST(NameNode, IsLocalMatchesLocations) {
  NameNode nn(Rng(4), 6, 3);
  const auto blocks = nn.create_file(64.0);
  const auto& locs = nn.locations(blocks[0]);
  std::size_t local = 0;
  for (cluster::MachineId m = 0; m < 6; ++m) {
    if (nn.is_local(blocks[0], m)) ++local;
  }
  EXPECT_EQ(local, locs.size());
}

TEST(NameNode, PlacementIsTightlyBalanced) {
  NameNode nn(Rng(5), 8, 3);
  nn.create_file(64.0 * 4000);
  // 4000 blocks x 3 replicas over 8 nodes -> 1500 expected per node.  With
  // power-of-two-choices placement the node spread stays within a few
  // percent of the mean (uniform-random sampling drifted ~10x wider).
  const auto stats = nn.locality_stats();
  EXPECT_DOUBLE_EQ(stats.mean_per_node, 1500.0);
  EXPECT_LE(stats.node_spread(), 75u);  // 5% of the mean
  for (auto c : stats.blocks_per_node) {
    EXPECT_GT(c, 1425u);
    EXPECT_LT(c, 1575u);
  }
}

TEST(NameNode, LocalityStatsCountShortLastBlock) {
  NameNode nn(Rng(5), 4, 2);
  nn.create_file(100.0);  // one full block + one short (36 MB) block
  const auto stats = nn.locality_stats();
  std::size_t total = 0;
  for (auto c : stats.blocks_per_node) total += c;
  EXPECT_EQ(total, 4u);  // 2 blocks x 2 replicas, short block included
  EXPECT_DOUBLE_EQ(stats.mean_per_node, 1.0);
  EXPECT_EQ(stats.replicas_per_rack.size(), 1u);  // flat: everything rack 0
  EXPECT_EQ(stats.replicas_per_rack[0], 4u);
}

TEST(NameNode, RackAwarePlacementSpansExactlyTwoRacks) {
  // 8 nodes in 4 racks (round-robin: node n -> rack n % 4).  Hadoop's
  // default policy: replica 1 anywhere, replica 2 off-rack, replica 3 in
  // replica 2's rack — so each block's 3 replicas span exactly 2 racks.
  const std::vector<std::size_t> racks = {0, 1, 2, 3, 0, 1, 2, 3};
  NameNode nn(Rng(8), 8, 3, racks);
  EXPECT_EQ(nn.num_racks(), 4u);
  const auto blocks = nn.create_file(64.0 * 200);
  for (BlockId b : blocks) {
    const auto& locs = nn.locations(b);
    ASSERT_EQ(locs.size(), 3u);
    std::set<std::size_t> spanned;
    for (auto m : locs) spanned.insert(nn.rack_of(m));
    EXPECT_EQ(spanned.size(), 2u);
    // Replicas 2 and 3 share a rack that differs from replica 1's.
    EXPECT_NE(nn.rack_of(locs[0]), nn.rack_of(locs[1]));
    EXPECT_EQ(nn.rack_of(locs[1]), nn.rack_of(locs[2]));
  }
}

TEST(NameNode, RackAwarePlacementStaysBalanced) {
  const std::vector<std::size_t> racks = {0, 1, 2, 3, 0, 1, 2, 3};
  NameNode nn(Rng(9), 8, 3, racks);
  nn.create_file(64.0 * 2000);
  const auto stats = nn.locality_stats();
  // 2000 x 3 replicas over 8 nodes -> 750 per node; rack constraints narrow
  // the candidate pools, so allow a wider (but still tight) band than flat.
  EXPECT_DOUBLE_EQ(stats.mean_per_node, 750.0);
  EXPECT_LE(stats.node_spread(), 120u);
  ASSERT_EQ(stats.replicas_per_rack.size(), 4u);
  std::size_t rack_total = 0;
  for (auto c : stats.replicas_per_rack) rack_total += c;
  EXPECT_EQ(rack_total, 6000u);
}

TEST(NameNode, ThreeLevelLocalityMatchesRackAssignment) {
  const std::vector<std::size_t> racks = {0, 1, 0, 1};
  NameNode nn(Rng(10), 4, 2, racks);
  const auto blocks = nn.create_file(64.0);
  const BlockId b = blocks[0];
  for (cluster::MachineId m = 0; m < 4; ++m) {
    const Locality lv = nn.locality(b, m);
    if (nn.is_local(b, m)) {
      EXPECT_EQ(lv, Locality::kNodeLocal);
      continue;
    }
    bool rack_replica = false;
    for (auto r : nn.locations(b)) {
      if (nn.rack_of(r) == nn.rack_of(m)) rack_replica = true;
    }
    EXPECT_EQ(lv, rack_replica ? Locality::kRackLocal : Locality::kOffRack);
  }
}

TEST(NameNode, DeterministicForSameSeed) {
  NameNode a(Rng(6), 8), b(Rng(6), 8);
  const auto ba = a.create_file(64.0 * 20);
  const auto bb = b.create_file(64.0 * 20);
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(a.locations(ba[i]), b.locations(bb[i]));
  }
}

TEST(NameNode, RejectsBadInput) {
  EXPECT_THROW(NameNode(Rng(1), 0), PreconditionError);
  EXPECT_THROW(NameNode(Rng(1), 4, 0), PreconditionError);
  NameNode nn(Rng(1), 4);
  EXPECT_THROW(nn.create_file(0.0), PreconditionError);
  EXPECT_THROW(nn.create_file(64.0, 0.0), PreconditionError);
  EXPECT_THROW(nn.locations(999), PreconditionError);
  EXPECT_THROW(nn.block_size(999), PreconditionError);
}

TEST(NameNode, BlockIdsAreSequentialAcrossFiles) {
  NameNode nn(Rng(7), 4);
  const auto f1 = nn.create_file(64.0 * 2);
  const auto f2 = nn.create_file(64.0 * 3);
  EXPECT_EQ(f1, (std::vector<BlockId>{0, 1}));
  EXPECT_EQ(f2, (std::vector<BlockId>{2, 3, 4}));
  EXPECT_EQ(nn.num_blocks(), 5u);
}

}  // namespace
}  // namespace eant::hdfs
