// Unit tests for the HDFS block-placement model: replication, block sizing,
// locality queries and placement balance.

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "hdfs/namenode.h"

namespace eant::hdfs {
namespace {

TEST(NameNode, CreatesExpectedBlockCount) {
  NameNode nn(Rng(1), 8);
  const auto blocks = nn.create_file(256.0);  // 4 x 64 MB
  EXPECT_EQ(blocks.size(), 4u);
  for (BlockId b : blocks) EXPECT_DOUBLE_EQ(nn.block_size(b), 64.0);
}

TEST(NameNode, LastBlockMayBeShort) {
  NameNode nn(Rng(1), 8);
  const auto blocks = nn.create_file(100.0);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_DOUBLE_EQ(nn.block_size(blocks[0]), 64.0);
  EXPECT_DOUBLE_EQ(nn.block_size(blocks[1]), 36.0);
}

TEST(NameNode, TinyFileGetsOneBlock) {
  NameNode nn(Rng(1), 8);
  const auto blocks = nn.create_file(1.0);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_DOUBLE_EQ(nn.block_size(blocks[0]), 1.0);
}

TEST(NameNode, ReplicasAreDistinctMachines) {
  NameNode nn(Rng(2), 10, 3);
  const auto blocks = nn.create_file(64.0 * 50);
  for (BlockId b : blocks) {
    const auto& locs = nn.locations(b);
    EXPECT_EQ(locs.size(), 3u);
    const std::set<cluster::MachineId> unique(locs.begin(), locs.end());
    EXPECT_EQ(unique.size(), 3u);
    for (auto m : unique) EXPECT_LT(m, 10u);
  }
}

TEST(NameNode, ReplicationDegradesToClusterSize) {
  NameNode nn(Rng(3), 2, 3);
  EXPECT_EQ(nn.replication(), 2);
  const auto blocks = nn.create_file(64.0);
  EXPECT_EQ(nn.locations(blocks[0]).size(), 2u);
}

TEST(NameNode, IsLocalMatchesLocations) {
  NameNode nn(Rng(4), 6, 3);
  const auto blocks = nn.create_file(64.0);
  const auto& locs = nn.locations(blocks[0]);
  std::size_t local = 0;
  for (cluster::MachineId m = 0; m < 6; ++m) {
    if (nn.is_local(blocks[0], m)) ++local;
  }
  EXPECT_EQ(local, locs.size());
}

TEST(NameNode, PlacementIsRoughlyBalanced) {
  NameNode nn(Rng(5), 8, 3);
  nn.create_file(64.0 * 4000);
  const auto& counts = nn.blocks_per_node();
  // 4000 blocks x 3 replicas over 8 nodes -> 1500 expected per node.
  for (auto c : counts) {
    EXPECT_GT(c, 1300u);
    EXPECT_LT(c, 1700u);
  }
}

TEST(NameNode, DeterministicForSameSeed) {
  NameNode a(Rng(6), 8), b(Rng(6), 8);
  const auto ba = a.create_file(64.0 * 20);
  const auto bb = b.create_file(64.0 * 20);
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(a.locations(ba[i]), b.locations(bb[i]));
  }
}

TEST(NameNode, RejectsBadInput) {
  EXPECT_THROW(NameNode(Rng(1), 0), PreconditionError);
  EXPECT_THROW(NameNode(Rng(1), 4, 0), PreconditionError);
  NameNode nn(Rng(1), 4);
  EXPECT_THROW(nn.create_file(0.0), PreconditionError);
  EXPECT_THROW(nn.create_file(64.0, 0.0), PreconditionError);
  EXPECT_THROW(nn.locations(999), PreconditionError);
  EXPECT_THROW(nn.block_size(999), PreconditionError);
}

TEST(NameNode, BlockIdsAreSequentialAcrossFiles) {
  NameNode nn(Rng(7), 4);
  const auto f1 = nn.create_file(64.0 * 2);
  const auto f2 = nn.create_file(64.0 * 3);
  EXPECT_EQ(f1, (std::vector<BlockId>{0, 1}));
  EXPECT_EQ(f2, (std::vector<BlockId>{2, 3, 4}));
  EXPECT_EQ(nn.num_blocks(), 5u);
}

}  // namespace
}  // namespace eant::hdfs
