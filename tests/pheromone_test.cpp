// Unit tests for the pheromone table (Eq. 4), the deposit math (Eq. 5,
// including the paper's worked example from Sec. IV-C-2), negative feedback
// (Eq. 6) and the exchange strategies (Sec. IV-D).

#include <gtest/gtest.h>

#include "cluster/catalog.h"
#include "cluster/cluster.h"
#include "common/error.h"
#include "core/aco.h"
#include "core/exchange.h"
#include "core/pheromone.h"
#include "sim/simulator.h"

namespace eant::core {
namespace {

mr::TaskReport report_on(mr::JobId job, cluster::MachineId machine,
                         mr::TaskKind kind = mr::TaskKind::kMap) {
  mr::TaskReport r;
  r.spec.job = job;
  r.spec.kind = kind;
  r.machine = machine;
  return r;
}

TEST(PheromoneTable, InitialisesTrailsAtTauInit) {
  PheromoneTable t(3, 0.5, 1.0);
  t.add_job(0);
  for (cluster::MachineId m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(t.tau(0, mr::TaskKind::kMap, m), 1.0);
    EXPECT_DOUBLE_EQ(t.tau(0, mr::TaskKind::kReduce, m), 1.0);
  }
  EXPECT_DOUBLE_EQ(t.row_sum(0, mr::TaskKind::kMap), 3.0);
}

TEST(PheromoneTable, AddRemoveLifecycle) {
  PheromoneTable t(2, 0.5);
  EXPECT_FALSE(t.has_job(7));
  t.add_job(7);
  EXPECT_TRUE(t.has_job(7));
  EXPECT_THROW(t.add_job(7), PreconditionError);
  t.remove_job(7);
  EXPECT_FALSE(t.has_job(7));
  EXPECT_THROW(t.tau(7, mr::TaskKind::kMap, 0), PreconditionError);
}

TEST(PheromoneTable, RejectsBadConstruction) {
  EXPECT_THROW(PheromoneTable(0, 0.5), PreconditionError);
  EXPECT_THROW(PheromoneTable(2, 1.5), PreconditionError);
  EXPECT_THROW(PheromoneTable(2, 0.5, 0.0), PreconditionError);
  EXPECT_THROW(PheromoneTable(2, 0.5, 1.0, 2.0), PreconditionError);
}

// The worked example of Sec. IV-C-2: machine A completes two tasks at 2 kJ
// each, machine B one task at 3 kJ; rho = 0.5 and tau_1 = 1 everywhere.
// Average colony energy = (2+2+3)/3 kJ; deposits: A gets 2 * (7/3)/2,
// B gets (7/3)/3.  tau_2(A) = 0.5*1 + 0.5*2.3333 = 1.6667,
// tau_2(B) = 0.5*1 + 0.5*0.7778 = 0.8889.
TEST(PheromoneTable, PaperWorkedExample) {
  std::vector<EstimatedReport> interval;
  interval.push_back({report_on(0, 0), 2000.0});
  interval.push_back({report_on(0, 0), 2000.0});
  interval.push_back({report_on(0, 1), 3000.0});
  const DeltaMap deposits = compute_deposits(interval, 2);

  const auto& row = deposits.at({0, mr::TaskKind::kMap});
  EXPECT_NEAR(row[0], 2.0 * (7.0 / 3.0) / 2.0, 1e-12);
  EXPECT_NEAR(row[1], (7.0 / 3.0) / 3.0, 1e-12);

  PheromoneTable t(2, 0.5, 1.0, 0.01);
  t.add_job(0);
  t.apply(deposits);
  EXPECT_NEAR(t.tau(0, mr::TaskKind::kMap, 0), 1.0 + 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(t.tau(0, mr::TaskKind::kMap, 1), 8.0 / 9.0, 1e-9);
}

TEST(PheromoneTable, EvaporationWithoutDepositOnSomeMachines) {
  PheromoneTable t(3, 0.5, 1.0, 0.01);
  t.add_job(0);
  DeltaMap deposits;
  deposits[{0, mr::TaskKind::kMap}] = {2.0, 0.0, 0.0};
  t.apply(deposits);
  EXPECT_DOUBLE_EQ(t.tau(0, mr::TaskKind::kMap, 0), 0.5 + 1.0);
  // Machines with zero deposit in an active trail purely evaporate (Eq. 4).
  EXPECT_DOUBLE_EQ(t.tau(0, mr::TaskKind::kMap, 1), 0.5);
  // Reduce trail saw no deposits at all and stays untouched.
  EXPECT_DOUBLE_EQ(t.tau(0, mr::TaskKind::kReduce, 0), 1.0);
}

TEST(PheromoneTable, TauFloorHolds) {
  PheromoneTable t(2, 0.5, 1.0, 0.05);
  t.add_job(0);
  DeltaMap deposits;
  deposits[{0, mr::TaskKind::kMap}] = {-100.0, -100.0};  // negative feedback
  t.apply(deposits);
  EXPECT_DOUBLE_EQ(t.tau(0, mr::TaskKind::kMap, 0), 0.05);
  EXPECT_GT(t.row_sum(0, mr::TaskKind::kMap), 0.0);
}

TEST(PheromoneTable, DepositsForRemovedJobsIgnored) {
  PheromoneTable t(2, 0.5);
  t.add_job(0);
  t.remove_job(0);
  DeltaMap deposits;
  deposits[{0, mr::TaskKind::kMap}] = {1.0, 1.0};
  EXPECT_NO_THROW(t.apply(deposits));
}

TEST(ComputeDeposits, EnergyFloorPreventsDivision) {
  std::vector<EstimatedReport> interval;
  interval.push_back({report_on(0, 0), 0.0});  // zero-energy estimate
  interval.push_back({report_on(0, 1), 10.0});
  const DeltaMap deposits = compute_deposits(interval, 2, 1.0);
  const auto& row = deposits.at({0, mr::TaskKind::kMap});
  EXPECT_TRUE(std::isfinite(row[0]));
  EXPECT_GT(row[0], row[1]);  // cheaper task earns more pheromone
}

TEST(ComputeDeposits, SeparatesMapAndReduceColonies) {
  std::vector<EstimatedReport> interval;
  interval.push_back({report_on(0, 0, mr::TaskKind::kMap), 10.0});
  interval.push_back({report_on(0, 1, mr::TaskKind::kReduce), 10.0});
  const DeltaMap deposits = compute_deposits(interval, 2);
  EXPECT_EQ(deposits.size(), 2u);
  EXPECT_TRUE(deposits.contains({0, mr::TaskKind::kMap}));
  EXPECT_TRUE(deposits.contains({0, mr::TaskKind::kReduce}));
}

TEST(ComputeDeposits, EfficientMachineEarnsMorePheromone) {
  // Machine 0 finishes tasks at 5 J, machine 1 at 20 J.
  std::vector<EstimatedReport> interval;
  for (int i = 0; i < 4; ++i) interval.push_back({report_on(0, 0), 5.0});
  for (int i = 0; i < 4; ++i) interval.push_back({report_on(0, 1), 20.0});
  const auto deposits = compute_deposits(interval, 2);
  const auto& row = deposits.at({0, mr::TaskKind::kMap});
  EXPECT_GT(row[0], row[1] * 2.0);
}

// --- exchange strategies -------------------------------------------------------

TEST(MachineExchange, AveragesWithinHomogeneousGroup) {
  sim::Simulator sim;
  cluster::Cluster c(sim);
  c.add_machines(cluster::catalog::desktop(), 2);  // group {0,1}
  c.add_machines(cluster::catalog::atom(), 1);     // group {2}
  DeltaMap deltas;
  deltas[{0, mr::TaskKind::kMap}] = {4.0, 0.0, 5.0};
  const DeltaMap out = machine_level_exchange(deltas, c);
  const auto& row = out.at({0, mr::TaskKind::kMap});
  EXPECT_DOUBLE_EQ(row[0], 2.0);  // (4+0)/2
  EXPECT_DOUBLE_EQ(row[1], 2.0);
  EXPECT_DOUBLE_EQ(row[2], 5.0);  // singleton group unchanged
}

TEST(MachineExchange, PreservesTotalWithinGroup) {
  sim::Simulator sim;
  cluster::Cluster c(sim);
  c.add_machines(cluster::catalog::t110(), 3);
  DeltaMap deltas;
  deltas[{0, mr::TaskKind::kReduce}] = {6.0, 3.0, 0.0};
  const auto out = machine_level_exchange(deltas, c);
  const auto& row = out.at({0, mr::TaskKind::kReduce});
  EXPECT_DOUBLE_EQ(row[0] + row[1] + row[2], 9.0);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
}

TEST(JobExchange, AveragesAcrossHomogeneousJobs) {
  DeltaMap deltas;
  deltas[{0, mr::TaskKind::kMap}] = {4.0, 0.0};
  deltas[{1, mr::TaskKind::kMap}] = {0.0, 8.0};
  deltas[{2, mr::TaskKind::kMap}] = {100.0, 100.0};
  const auto out = job_level_exchange(deltas, [](mr::JobId j) {
    return j <= 1 ? std::string("Wordcount-S") : std::string("Grep-L");
  });
  const auto& row0 = out.at({0, mr::TaskKind::kMap});
  const auto& row1 = out.at({1, mr::TaskKind::kMap});
  EXPECT_DOUBLE_EQ(row0[0], 2.0);
  EXPECT_DOUBLE_EQ(row0[1], 4.0);
  EXPECT_EQ(row0, row1);  // homogeneous jobs share experiences
  const auto& row2 = out.at({2, mr::TaskKind::kMap});
  EXPECT_DOUBLE_EQ(row2[0], 100.0);  // different class untouched
}

TEST(JobExchange, KindsDoNotMix) {
  DeltaMap deltas;
  deltas[{0, mr::TaskKind::kMap}] = {10.0};
  deltas[{1, mr::TaskKind::kReduce}] = {2.0};
  const auto out = job_level_exchange(
      deltas, [](mr::JobId) { return std::string("same-class"); });
  EXPECT_DOUBLE_EQ(out.at({0, mr::TaskKind::kMap})[0], 10.0);
  EXPECT_DOUBLE_EQ(out.at({1, mr::TaskKind::kReduce})[0], 2.0);
}

std::function<std::string(mr::JobId)> classes_by_parity() {
  // Even job ids are "Wordcount-S", odd are "Grep-S".
  return [](mr::JobId j) {
    return j % 2 == 0 ? std::string("Wordcount-S") : std::string("Grep-S");
  };
}

TEST(NegativeFeedback, SubtractsCompetingClassMean) {
  DeltaMap deltas;
  deltas[{0, mr::TaskKind::kMap}] = {3.0, 0.0};  // Wordcount-S
  deltas[{1, mr::TaskKind::kMap}] = {1.0, 2.0};  // Grep-S
  const auto out = apply_negative_feedback(deltas, classes_by_parity());
  // Job 0 on machine 0: own 3 minus the competing class mean 1 = 2.
  EXPECT_DOUBLE_EQ(out.at({0, mr::TaskKind::kMap})[0], 2.0);
  EXPECT_DOUBLE_EQ(out.at({0, mr::TaskKind::kMap})[1], -2.0);
  EXPECT_DOUBLE_EQ(out.at({1, mr::TaskKind::kMap})[0], -2.0);
  EXPECT_DOUBLE_EQ(out.at({1, mr::TaskKind::kMap})[1], 2.0);
}

TEST(NegativeFeedback, HomogeneousColoniesDoNotFight) {
  // Same-class colonies pool experiences (job-level exchange); Eq. 6 must
  // not make them subtract from each other, or the shared ranking inverts.
  DeltaMap deltas;
  deltas[{0, mr::TaskKind::kMap}] = {3.0, 1.0};
  deltas[{2, mr::TaskKind::kMap}] = {3.0, 1.0};  // same class (even ids)
  const auto out = apply_negative_feedback(deltas, classes_by_parity());
  EXPECT_EQ(out.at({0, mr::TaskKind::kMap}), (std::vector<double>{3.0, 1.0}));
  EXPECT_EQ(out.at({2, mr::TaskKind::kMap}), (std::vector<double>{3.0, 1.0}));
}

TEST(NegativeFeedback, CompetitorMeanUsesColonyCount) {
  DeltaMap deltas;
  deltas[{0, mr::TaskKind::kMap}] = {6.0};  // Wordcount-S
  deltas[{1, mr::TaskKind::kMap}] = {2.0};  // Grep-S
  deltas[{3, mr::TaskKind::kMap}] = {4.0};  // Grep-S
  const auto out = apply_negative_feedback(deltas, classes_by_parity());
  // Job 0: 6 - mean(2, 4) = 3.
  EXPECT_DOUBLE_EQ(out.at({0, mr::TaskKind::kMap})[0], 3.0);
  // Each grep colony: own - mean of wordcount colonies (just 6).
  EXPECT_DOUBLE_EQ(out.at({1, mr::TaskKind::kMap})[0], -4.0);
  EXPECT_DOUBLE_EQ(out.at({3, mr::TaskKind::kMap})[0], -2.0);
}

TEST(NegativeFeedback, SingleColonyUnchanged) {
  DeltaMap deltas;
  deltas[{0, mr::TaskKind::kMap}] = {3.0, 1.0};
  const auto out = apply_negative_feedback(deltas, classes_by_parity());
  EXPECT_EQ(out.at({0, mr::TaskKind::kMap}),
            (std::vector<double>{3.0, 1.0}));
}

TEST(NegativeFeedback, KindsAreIndependent) {
  DeltaMap deltas;
  deltas[{0, mr::TaskKind::kMap}] = {3.0};
  deltas[{1, mr::TaskKind::kReduce}] = {5.0};
  const auto out = apply_negative_feedback(deltas, classes_by_parity());
  EXPECT_DOUBLE_EQ(out.at({0, mr::TaskKind::kMap})[0], 3.0);
  EXPECT_DOUBLE_EQ(out.at({1, mr::TaskKind::kReduce})[0], 5.0);
}

TEST(Exchange, EmptyInputsProduceEmptyOutputs) {
  sim::Simulator sim;
  cluster::Cluster c(sim);
  c.add_machines(cluster::catalog::atom(), 1);
  EXPECT_TRUE(machine_level_exchange({}, c).empty());
  EXPECT_TRUE(
      job_level_exchange({}, [](mr::JobId) { return std::string("x"); })
          .empty());
  EXPECT_TRUE(apply_negative_feedback({}, classes_by_parity()).empty());
}

}  // namespace
}  // namespace eant::core
