// Unit tests for the cluster substrate: the linear power model, exact energy
// integration, the sampling power meter (WattsUP substitute), homogeneous
// grouping, and the paper's machine catalog (Table I / Sec. V-B).

#include <gtest/gtest.h>

#include "cluster/catalog.h"
#include "cluster/cluster.h"
#include "cluster/machine.h"
#include "cluster/power_meter.h"
#include "common/error.h"
#include "sim/simulator.h"

namespace eant::cluster {
namespace {

MachineType test_type() {
  MachineType t;
  t.name = "Test";
  t.cores = 4;
  t.cpu_factor = 1.0;
  t.io_mbps = 100.0;
  t.idle_power = 50.0;
  t.alpha = 100.0;
  return t;
}

TEST(MachineType, PowerIsLinearInUtilisation) {
  const MachineType t = test_type();
  EXPECT_DOUBLE_EQ(t.power_at(0.0), 50.0);
  EXPECT_DOUBLE_EQ(t.power_at(0.5), 100.0);
  EXPECT_DOUBLE_EQ(t.power_at(1.0), 150.0);
}

TEST(MachineType, PowerClampsUtilisation) {
  const MachineType t = test_type();
  EXPECT_DOUBLE_EQ(t.power_at(-0.5), 50.0);
  EXPECT_DOUBLE_EQ(t.power_at(2.0), 150.0);
}

TEST(MachineType, TaskRuntimeCombinesCpuAndIo) {
  MachineType t = test_type();
  t.cpu_factor = 0.5;  // half-speed cores
  // 10 ref-seconds -> 20 s of CPU; 200 MB at 100 MB/s -> 2 s of IO.
  EXPECT_DOUBLE_EQ(t.task_runtime(10.0, 200.0), 22.0);
  EXPECT_THROW(t.task_runtime(-1.0, 0.0), PreconditionError);
  EXPECT_THROW(t.task_runtime(0.0, -1.0), PreconditionError);
}

TEST(Machine, RejectsMisconfiguredTypes) {
  sim::Simulator sim;
  MachineType t = test_type();
  t.cores = 0;
  EXPECT_THROW(Machine(sim, 0, t), PreconditionError);
  t = test_type();
  t.cpu_factor = 0.0;
  EXPECT_THROW(Machine(sim, 0, t), PreconditionError);
  t = test_type();
  t.idle_power = -1.0;
  EXPECT_THROW(Machine(sim, 0, t), PreconditionError);
}

TEST(Machine, UtilisationTracksDemand) {
  sim::Simulator sim;
  Machine m(sim, 0, test_type());
  EXPECT_DOUBLE_EQ(m.utilization(), 0.0);
  m.adjust_demand(1.0);
  EXPECT_DOUBLE_EQ(m.utilization(), 0.25);
  m.adjust_demand(2.0);
  EXPECT_DOUBLE_EQ(m.utilization(), 0.75);
  m.adjust_demand(3.0);  // 6 cores demanded of 4 -> clamped utilisation
  EXPECT_DOUBLE_EQ(m.utilization(), 1.0);
  EXPECT_TRUE(m.oversubscribed());
  m.adjust_demand(-6.0);
  EXPECT_DOUBLE_EQ(m.utilization(), 0.0);
  EXPECT_FALSE(m.oversubscribed());
}

TEST(Machine, EnergyIntegratesExactly) {
  sim::Simulator sim;
  Machine m(sim, 0, test_type());
  // 10 s idle: 50 W.
  sim.schedule_at(10.0, [&] { m.adjust_demand(2.0); });  // util 0.5 -> 100 W
  sim.schedule_at(30.0, [&] { m.adjust_demand(-2.0); });
  sim.run();
  sim.run_until(40.0);
  // 10*50 + 20*100 + 10*50 = 3000 J
  EXPECT_DOUBLE_EQ(m.energy(), 3000.0);
}

TEST(Machine, UtilizationIntegral) {
  sim::Simulator sim;
  Machine m(sim, 0, test_type());
  sim.schedule_at(0.0, [&] { m.adjust_demand(4.0); });  // util 1.0
  sim.schedule_at(10.0, [&] { m.adjust_demand(-2.0); });  // util 0.5
  sim.run();
  sim.run_until(20.0);
  EXPECT_DOUBLE_EQ(m.utilization_integral(), 10.0 * 1.0 + 10.0 * 0.5);
}

TEST(Machine, NegativeDemandDriftIsForgiven) {
  sim::Simulator sim;
  Machine m(sim, 0, test_type());
  m.adjust_demand(1.0);
  m.adjust_demand(-1.0 - 1e-9);  // rounding drift
  EXPECT_DOUBLE_EQ(m.demand_cores(), 0.0);
  EXPECT_THROW(m.adjust_demand(-0.5), InvariantError);
}

TEST(PowerMeter, MatchesExactIntegralForConstantLoad) {
  sim::Simulator sim;
  Machine m(sim, 0, test_type());
  PowerMeter meter(sim, m, 1.0);
  m.adjust_demand(2.0);  // constant 100 W
  sim.run_until(100.0);
  EXPECT_NEAR(meter.energy(), m.energy(), 1e-6);
  EXPECT_EQ(meter.samples(), 100u);
  EXPECT_NEAR(meter.mean_power(), 100.0, 1e-9);
}

TEST(PowerMeter, TracksVaryingLoadClosely) {
  sim::Simulator sim;
  Machine m(sim, 0, test_type());
  PowerMeter meter(sim, m, 1.0);
  // Toggle demand every 10 s; meter (1 s samples) should stay close to the
  // exact integral.
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(i * 10.0, [&m, i] {
      m.adjust_demand(i % 2 == 0 ? 2.0 : -2.0);
    });
  }
  sim.run_until(100.0);
  EXPECT_NEAR(meter.energy(), m.energy(), 0.02 * m.energy());
}

TEST(PowerMeter, SeriesRecordingAndReset) {
  sim::Simulator sim;
  Machine m(sim, 0, test_type());
  PowerMeter meter(sim, m, 1.0, /*record_series=*/true);
  sim.run_until(5.0);
  EXPECT_EQ(meter.series().size(), 5u);
  EXPECT_DOUBLE_EQ(meter.series().front().watts, 50.0);
  meter.reset();
  EXPECT_EQ(meter.samples(), 0u);
  EXPECT_DOUBLE_EQ(meter.energy(), 0.0);
  EXPECT_TRUE(meter.series().empty());
}

TEST(PowerMeter, StopsSamplingWhenDestroyed) {
  sim::Simulator sim;
  Machine m(sim, 0, test_type());
  {
    PowerMeter meter(sim, m, 1.0);
    sim.run_until(3.0);
  }
  sim.run_until(10.0);  // must not crash on dangling meter events
  EXPECT_GE(sim.now(), 10.0);
}

TEST(Cluster, AddAndAccessMachines) {
  sim::Simulator sim;
  Cluster c(sim);
  const MachineId first = c.add_machines(test_type(), 3);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.machine(2).id(), 2u);
  EXPECT_THROW(c.machine(3), PreconditionError);
}

TEST(Cluster, HomogeneousGroups) {
  sim::Simulator sim;
  Cluster c(sim);
  c.add_machines(catalog::desktop(), 2);
  c.add_machines(catalog::atom(), 1);
  c.add_machines(catalog::desktop(), 1);  // same type added twice
  const auto& group0 = c.homogeneous_group(0);
  EXPECT_EQ(group0, (std::vector<MachineId>{0, 1, 3}));
  const auto& group2 = c.homogeneous_group(2);
  EXPECT_EQ(group2, (std::vector<MachineId>{2}));
  EXPECT_EQ(c.machines_of_type("Atom"), (std::vector<MachineId>{2}));
  EXPECT_TRUE(c.machines_of_type("NoSuch").empty());
}

TEST(Cluster, SlotTotalsAndEnergy) {
  sim::Simulator sim;
  Cluster c(sim);
  c.add_machines(test_type(), 2);  // default 4 map + 2 reduce each
  EXPECT_EQ(c.total_map_slots(), 8);
  EXPECT_EQ(c.total_reduce_slots(), 4);
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(c.total_energy(), 2 * 10.0 * 50.0);
}

TEST(Catalog, PaperFleetComposition) {
  sim::Simulator sim;
  Cluster c(sim);
  add_paper_fleet(c);
  EXPECT_EQ(c.size(), 16u);  // 8 + 3 + 2 + 1 + 1 + 1
  EXPECT_EQ(c.machines_of_type("Desktop").size(), 8u);
  EXPECT_EQ(c.machines_of_type("T110").size(), 3u);
  EXPECT_EQ(c.machines_of_type("T420").size(), 2u);
  EXPECT_EQ(c.machines_of_type("T620").size(), 1u);
  EXPECT_EQ(c.machines_of_type("T320").size(), 1u);
  EXPECT_EQ(c.machines_of_type("Atom").size(), 1u);
  // Paper config: every slave has 4 map slots and 2 reduce slots.
  EXPECT_EQ(c.total_map_slots(), 64);
  EXPECT_EQ(c.total_reduce_slots(), 32);
}

TEST(Catalog, TableOneSpecs) {
  // Table I: Desktop = Core i7 "8 x 3.4 GHz" (hyperthreads; 4 physical
  // cores in the power/contention model), 16 GB; PowerEdge = Xeon E5
  // 24-core, 32 GB.
  const MachineType d = catalog::desktop();
  EXPECT_EQ(d.cores, 4);
  EXPECT_EQ(d.memory_gb, 16);
  const MachineType x = catalog::xeon_e5();
  EXPECT_EQ(x.cores, 24);
  EXPECT_EQ(x.memory_gb, 32);
}

TEST(Catalog, PowerCharacterisationMatchesMotivation) {
  // Sec. II: the Xeon box idles high with a shallow slope; the desktop
  // idles low with a steep slope — the source of the Fig. 1(a) crossover.
  const MachineType d = catalog::desktop();
  const MachineType x = catalog::xeon_e5();
  EXPECT_GT(x.idle_power, d.idle_power);
  EXPECT_LT(x.alpha, d.alpha);
  // The Atom node is the low-power machine of the fleet.
  const MachineType a = catalog::atom();
  EXPECT_LT(a.power_at(1.0), d.power_at(0.0));
}

}  // namespace
}  // namespace eant::cluster
