// Tests for the thread-per-seed sweep driver (exp/parallel_for.h,
// exp/sweep.h): the parallel pool itself, and the load-bearing claim that an
// N-seed parallel sweep is bit-identical to the serial loop it replaced —
// per-seed determinism digests equal at any thread count, results in seed
// order regardless of completion order.
//
// This file carries the `tsan` ctest label: the ThreadSanitizer CI lane
// builds it with -fsanitize=thread and runs exactly these tests, so every
// cross-thread access the driver makes is race-checked on every push.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/catalog.h"
#include "exp/builders.h"
#include "exp/chaos.h"
#include "exp/parallel_for.h"
#include "exp/runner.h"
#include "exp/sweep.h"

namespace eant {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  exp::parallel_for(kN, 4, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroItemsIsANoop) {
  exp::parallel_for(0, 4, [](std::size_t) { FAIL() << "fn called for n=0"; });
}

TEST(ParallelFor, SerialFallbackRunsOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  exp::parallel_for(8, 1, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelFor, MoreThreadsThanItemsStillCoversAll) {
  std::vector<std::atomic<int>> visits(3);
  exp::parallel_for(3, 16, [&](std::size_t i) { ++visits[i]; });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, FirstExceptionPropagates) {
  EXPECT_THROW(
      exp::parallel_for(64, 4,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("cell 7 died");
                        }),
      std::runtime_error);
}

TEST(ParallelFor, WorkerClampAndRequestedCounts) {
  EXPECT_EQ(exp::parallel_workers(10, 4), 4u);
  EXPECT_EQ(exp::parallel_workers(2, 8), 2u);   // never more than items
  EXPECT_GE(exp::parallel_workers(10, 0), 1u);  // 0 = hardware, at least 1
  EXPECT_EQ(exp::parallel_workers(10, 1), 1u);
}

// --- sweep driver -----------------------------------------------------------

exp::RunConfig audited_config() {
  exp::RunConfig cfg;
  cfg.audit.enabled = true;
  return cfg;
}

std::vector<workload::JobSpec> small_batch() {
  // Jobs small enough that a 6-seed sweep stays in test-suite time but large
  // enough that cells finish at staggered times under contention.
  return exp::job_batch(workload::AppKind::kTerasort, 1200.0, 4, 2);
}

TEST(Sweep, ParallelDigestsBitIdenticalToSerial) {
  const auto fleet = exp::homogeneous(cluster::catalog::xeon_e5(), 8);
  const auto jobs = small_batch();
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5, 6};

  exp::SweepConfig serial;
  serial.threads = 1;
  exp::SweepConfig parallel;
  parallel.threads = 4;

  const auto a = exp::sweep_seeds(fleet, exp::SchedulerKind::kEAnt,
                                  audited_config(), jobs, seeds, serial);
  const auto b = exp::sweep_seeds(fleet, exp::SchedulerKind::kEAnt,
                                  audited_config(), jobs, seeds, parallel);

  ASSERT_EQ(a.size(), seeds.size());
  ASSERT_EQ(b.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(a[i].seed, seeds[i]);
    EXPECT_EQ(b[i].seed, seeds[i]);
    ASSERT_NE(a[i].metrics.determinism_digest, 0u);
    EXPECT_EQ(a[i].metrics.determinism_digest, b[i].metrics.determinism_digest)
        << "seed " << seeds[i] << ": parallel digest diverged from serial";
    EXPECT_DOUBLE_EQ(a[i].metrics.makespan, b[i].metrics.makespan);
    EXPECT_DOUBLE_EQ(a[i].metrics.total_energy, b[i].metrics.total_energy);
  }
}

TEST(Sweep, DistinctSeedsProduceDistinctDigests) {
  const auto fleet = exp::homogeneous(cluster::catalog::xeon_e5(), 8);
  exp::SweepConfig sc;
  sc.threads = 2;
  const auto out = exp::sweep_seeds(fleet, exp::SchedulerKind::kEAnt,
                                    audited_config(), small_batch(), {1, 2},
                                    sc);
  EXPECT_NE(out[0].metrics.determinism_digest,
            out[1].metrics.determinism_digest);
}

TEST(Sweep, ResultOrderFollowsSeedOrderNotCompletionOrder) {
  // Seed list deliberately unsorted; slots must come back in list order.
  const auto fleet = exp::homogeneous(cluster::catalog::xeon_e5(), 8);
  const std::vector<std::uint64_t> seeds = {9, 3, 7, 1};
  exp::SweepConfig sc;
  sc.threads = 4;
  const auto out = exp::sweep_seeds(fleet, exp::SchedulerKind::kEAnt,
                                    audited_config(), small_batch(), seeds,
                                    sc);
  ASSERT_EQ(out.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(out[i].seed, seeds[i]);
  }
}

TEST(Sweep, VerifyDeterminismReportsReproducedDigests) {
  const auto fleet = exp::homogeneous(cluster::catalog::xeon_e5(), 8);
  exp::SweepConfig sc;
  sc.threads = 2;
  sc.verify_determinism = true;
  const auto out =
      exp::sweep_seeds(fleet, exp::SchedulerKind::kEAnt, exp::RunConfig{},
                       small_batch(), {1, 2, 3}, sc);
  for (const auto& o : out) {
    EXPECT_TRUE(o.deterministic) << "seed " << o.seed;
    EXPECT_NE(o.metrics.determinism_digest, 0u);  // audit forced on
  }
}

TEST(Sweep, CellExceptionPropagatesToCaller) {
  exp::RunConfig cfg;
  cfg.time_limit = 1.0;  // no workload can finish: execute() must throw
  const auto fleet = exp::homogeneous(cluster::catalog::xeon_e5(), 4);
  exp::SweepConfig sc;
  sc.threads = 2;
  EXPECT_THROW(exp::sweep_seeds(fleet, exp::SchedulerKind::kFifo, cfg,
                                small_batch(), {1, 2}, sc),
               std::exception);
}

TEST(ChaosCampaign, ParallelMatrixMatchesSerial) {
  // Two light mixes x two seeds through run_chaos_campaign at 1 and 3
  // threads: identical outcome order, identical digests.
  const auto fleet = exp::paper_fleet();
  exp::RunConfig base;
  base.topology = net::TopologySpec::oversubscribed();
  base.job_tracker.tracker_expiry_window = 30.0;
  const auto jobs = exp::job_batch(workload::AppKind::kTerasort, 1500.0, 4, 2);

  auto mixes = exp::default_chaos_mixes();
  mixes.resize(2);  // machine-crashes + link-faults keep the test fast

  exp::ChaosConfig cc;
  cc.seeds = {1, 2};
  cc.horizon = 3000.0;
  cc.verify_determinism = false;
  cc.threads = 1;
  const auto serial = exp::run_chaos_campaign(
      fleet, exp::SchedulerKind::kEAnt, base, jobs, mixes, cc);
  cc.threads = 3;
  const auto parallel = exp::run_chaos_campaign(
      fleet, exp::SchedulerKind::kEAnt, base, jobs, mixes, cc);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].mix, parallel[i].mix);
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    EXPECT_EQ(serial[i].metrics.determinism_digest,
              parallel[i].metrics.determinism_digest)
        << serial[i].mix << " seed " << serial[i].seed;
    EXPECT_EQ(serial[i].survived, parallel[i].survived);
  }
}

}  // namespace
}  // namespace eant
