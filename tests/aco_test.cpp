// Unit tests for the ACO sampling (Eq. 3/8), the fairness heuristic (Eq. 7)
// and the convergence tracker (Sec. VI-C's 80%-revisit stability rule).

#include <gtest/gtest.h>

#include <map>

#include "common/error.h"
#include "core/aco.h"
#include "core/convergence.h"
#include "core/heuristic.h"

namespace eant::core {
namespace {

// --- fairness heuristic (Eq. 7) ------------------------------------------------

TEST(FairnessEta, AtFairShareIsOne) {
  EXPECT_DOUBLE_EQ(fairness_eta(10.0, 10.0, 100.0), 1.0);
}

TEST(FairnessEta, BelowShareBoostsAboveOne) {
  const double eta = fairness_eta(10.0, 2.0, 100.0);
  EXPECT_GT(eta, 1.0);
  // The more starved, the larger the boost.
  EXPECT_GT(fairness_eta(10.0, 0.0, 100.0), eta);
}

TEST(FairnessEta, AboveShareDropsBelowOne) {
  const double eta = fairness_eta(10.0, 30.0, 100.0);
  EXPECT_LT(eta, 1.0);
  EXPECT_GT(eta, 0.0);
  EXPECT_LT(fairness_eta(10.0, 60.0, 100.0), eta);
}

TEST(FairnessEta, ExactFormula) {
  // eta = 1 / (1 - (Smin - Socc)/Spool) = 1 / (1 - (20-5)/100).
  EXPECT_NEAR(fairness_eta(20.0, 5.0, 100.0), 1.0 / 0.85, 1e-12);
}

TEST(FairnessEta, FullyStarvedSingleJobClampsToMax) {
  // Smin == Spool, Socc == 0 -> denominator 0 -> clamp to eta_max.
  EXPECT_DOUBLE_EQ(fairness_eta(100.0, 0.0, 100.0), 1e3);
  EXPECT_DOUBLE_EQ(fairness_eta(100.0, 0.0, 100.0, 1e-3, 42.0), 42.0);
}

TEST(FairnessEta, RejectsBadInput) {
  EXPECT_THROW(fairness_eta(1.0, 1.0, 0.0), PreconditionError);
  EXPECT_THROW(fairness_eta(-1.0, 1.0, 10.0), PreconditionError);
}

TEST(FairShare, DividesSlotsEvenly) {
  EXPECT_DOUBLE_EQ(fair_share(96, 4), 24.0);
  EXPECT_THROW(fair_share(96, 0), PreconditionError);
}

// --- sampling (Eq. 3/8) ---------------------------------------------------------

TEST(SampleJob, EmptyCandidatesGiveNothing) {
  PheromoneTable t(2, 0.5);
  Rng rng(1);
  EXPECT_FALSE(sample_job(t, rng, {}, mr::TaskKind::kMap, 0,
                          [](mr::JobId) { return 1.0; }, 0.1)
                   .has_value());
}

TEST(SampleJob, UniformTauGivesUniformChoice) {
  PheromoneTable t(2, 0.5);
  t.add_job(0);
  t.add_job(1);
  Rng rng(2);
  std::map<mr::JobId, int> counts;
  for (int i = 0; i < 20000; ++i) {
    const auto j = sample_job(t, rng, {0, 1}, mr::TaskKind::kMap, 0,
                              [](mr::JobId) { return 1.0; }, 0.1);
    ++counts[*j];
  }
  EXPECT_NEAR(counts[0] / 20000.0, 0.5, 0.02);
}

TEST(SampleJob, FollowsPheromoneRatio) {
  // The Fig. 5 example: tau(A) = 1.5, tau(B) = 0.83 for one colony across
  // two machines gives P(A) = 64%.  Dual view: one machine choosing between
  // two colonies whose normalised tau ratio is 1.5 : 0.83.
  PheromoneTable t(2, 0.5, 1.0, 0.01);
  t.add_job(0);
  t.add_job(1);
  DeltaMap d;
  // After apply with rho=0.5 from tau=1: tau = 0.5 + 0.5*deposit.
  d[{0, mr::TaskKind::kMap}] = {2.0, 1.0};  // tau -> 1.5 on m0, 1.0 on m1
  d[{1, mr::TaskKind::kMap}] = {0.66, 1.0};  // tau -> 0.83 on m0, 1.0 on m1
  t.apply(d);

  Rng rng(3);
  int picks0 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto j = sample_job(t, rng, {0, 1}, mr::TaskKind::kMap, 0,
                              [](mr::JobId) { return 1.0; }, 0.0);
    if (*j == 0) ++picks0;
  }
  const double w0 = 1.5 / 2.5, w1 = 0.83 / 1.83;
  EXPECT_NEAR(picks0 / double(n), w0 / (w0 + w1), 0.02);
}

TEST(SampleJob, BetaZeroIgnoresEta) {
  PheromoneTable t(1, 0.5);
  t.add_job(0);
  t.add_job(1);
  Rng rng(4);
  std::map<mr::JobId, int> counts;
  for (int i = 0; i < 20000; ++i) {
    const auto j = sample_job(
        t, rng, {0, 1}, mr::TaskKind::kMap, 0,
        [](mr::JobId j2) { return j2 == 0 ? 1000.0 : 0.001; }, 0.0);
    ++counts[*j];
  }
  EXPECT_NEAR(counts[0] / 20000.0, 0.5, 0.02);
}

TEST(SampleJob, LargerBetaAmplifiesEta) {
  PheromoneTable t(1, 0.5);
  t.add_job(0);
  t.add_job(1);
  auto eta = [](mr::JobId j) { return j == 0 ? 4.0 : 1.0; };
  auto frequency = [&](double beta) {
    Rng rng(5);
    int c0 = 0;
    for (int i = 0; i < 20000; ++i) {
      if (*sample_job(t, rng, {0, 1}, mr::TaskKind::kMap, 0, eta, beta) == 0) {
        ++c0;
      }
    }
    return c0 / 20000.0;
  };
  const double f_small = frequency(0.1);
  const double f_large = frequency(1.0);
  EXPECT_GT(f_small, 0.5);
  EXPECT_GT(f_large, f_small + 0.1);
  // beta = 1: weights 4 vs 1 -> 80%.
  EXPECT_NEAR(f_large, 0.8, 0.02);
}

TEST(SampleJob, RejectsNegativeBeta) {
  PheromoneTable t(1, 0.5);
  t.add_job(0);
  Rng rng(6);
  EXPECT_THROW(sample_job(t, rng, {0}, mr::TaskKind::kMap, 0,
                          [](mr::JobId) { return 1.0; }, -0.1),
               PreconditionError);
}

// --- convergence tracker --------------------------------------------------------

TEST(Convergence, StableWhenDistributionRepeats) {
  ConvergenceTracker c(0.8);
  c.record_interval(0, 0.0, 300.0, {10, 5, 0});
  EXPECT_FALSE(c.converged(0));
  c.record_interval(0, 0.0, 600.0, {9, 6, 0});  // overlap = 14/15 > 0.8
  EXPECT_TRUE(c.converged(0));
  EXPECT_DOUBLE_EQ(*c.convergence_time(0), 600.0);
}

TEST(Convergence, UnstableWhenAssignmentShifts) {
  ConvergenceTracker c(0.8);
  c.record_interval(0, 0.0, 300.0, {10, 0});
  c.record_interval(0, 0.0, 600.0, {0, 10});  // overlap 0
  EXPECT_FALSE(c.converged(0));
  EXPECT_DOUBLE_EQ(*c.last_overlap(0), 0.0);
  c.record_interval(0, 0.0, 900.0, {1, 9});  // overlap 9/10
  EXPECT_TRUE(c.converged(0));
  EXPECT_DOUBLE_EQ(*c.convergence_time(0), 900.0);
}

TEST(Convergence, ConvergenceTimeIsRelativeToSubmission) {
  ConvergenceTracker c(0.8);
  c.record_interval(3, 1000.0, 1300.0, {5, 5});
  c.record_interval(3, 1000.0, 1600.0, {5, 5});
  EXPECT_DOUBLE_EQ(*c.convergence_time(3), 600.0);
}

TEST(Convergence, EmptyIntervalsAreSkipped) {
  ConvergenceTracker c(0.8);
  c.record_interval(0, 0.0, 300.0, {10, 0});
  c.record_interval(0, 0.0, 600.0, {0, 0});  // no tasks: ignored
  c.record_interval(0, 0.0, 900.0, {10, 0});
  EXPECT_TRUE(c.converged(0));
}

TEST(Convergence, FirstStableTimeIsKept) {
  ConvergenceTracker c(0.8);
  c.record_interval(0, 0.0, 300.0, {10});
  c.record_interval(0, 0.0, 600.0, {10});
  c.record_interval(0, 0.0, 900.0, {10});
  EXPECT_DOUBLE_EQ(*c.convergence_time(0), 600.0);
}

TEST(Convergence, UnknownJobReportsNothing) {
  ConvergenceTracker c(0.8);
  EXPECT_FALSE(c.converged(42));
  EXPECT_FALSE(c.convergence_time(42).has_value());
  EXPECT_FALSE(c.last_overlap(42).has_value());
}

TEST(Convergence, ThresholdValidation) {
  EXPECT_THROW(ConvergenceTracker(0.0), PreconditionError);
  EXPECT_THROW(ConvergenceTracker(1.5), PreconditionError);
  EXPECT_NO_THROW(ConvergenceTracker(1.0));
}

TEST(Convergence, OverlapUsesLargerTotalAsDenominator) {
  ConvergenceTracker c(0.8);
  c.record_interval(0, 0.0, 300.0, {8, 2});
  c.record_interval(0, 0.0, 600.0, {16, 4});  // doubled volume: overlap 10/20
  EXPECT_FALSE(c.converged(0));
  EXPECT_DOUBLE_EQ(*c.last_overlap(0), 0.5);
}

}  // namespace
}  // namespace eant::core
