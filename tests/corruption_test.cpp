// Silent-data-corruption suite: FaultPlan/FaultInjector corruption
// mechanics, NameNode checksum bookkeeping (corrupt/confirm/clean-source
// re-replication/loud loss), digest neutrality of the disabled fault family,
// read-time failover, the background scrubber's detect->repair pipeline
// (including under brownout), shuffle and task-output verification, the
// corruption-conservation ledger, waste attribution, and determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "hdfs/namenode.h"
#include "mapreduce/job_tracker.h"
#include "net/topology.h"
#include "sched/capacity.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "tenancy/presets.h"
#include "tenancy/traffic.h"
#include "workload/job_spec.h"

namespace eant {
namespace {

using cluster::MachineId;

// --- FaultPlan ---------------------------------------------------------------

TEST(FaultPlanCorruption, HelpersBuildEventsAndEnableThePlan) {
  sim::FaultPlan plan;
  EXPECT_FALSE(plan.has_corruption_faults());
  plan.corrupt_replica_at(3, 17, 50.0).corrupt_machine_at(1, 80.0);
  EXPECT_TRUE(plan.has_corruption_faults());
  EXPECT_TRUE(plan.enabled());
  ASSERT_EQ(plan.corrupt_events.size(), 2u);
  EXPECT_EQ(plan.corrupt_events[0].machine, 3u);
  EXPECT_EQ(plan.corrupt_events[0].block, 17);
  EXPECT_DOUBLE_EQ(plan.corrupt_events[0].time, 50.0);
  EXPECT_EQ(plan.corrupt_events[1].block, -1);  // machine-level strike

  sim::FaultPlan mtbf_only;
  mtbf_only.corruption_mtbf = 500.0;
  EXPECT_TRUE(mtbf_only.has_corruption_faults());
  EXPECT_TRUE(mtbf_only.enabled());

  // The transport-level families enable the plan but need no replica
  // handler — they are drawn at the fetch / completion sites.
  sim::FaultPlan shuffle_only;
  shuffle_only.shuffle_corruption_prob = 0.01;
  EXPECT_FALSE(shuffle_only.has_corruption_faults());
  EXPECT_TRUE(shuffle_only.enabled());
  sim::FaultPlan output_only;
  output_only.task_output_corruption_prob = 0.01;
  EXPECT_TRUE(output_only.enabled());
}

// --- FaultInjector -----------------------------------------------------------

void run_until(sim::Simulator& sim, Seconds horizon) {
  while (sim.now() < horizon) {
    if (!sim.step()) break;
  }
}

TEST(FaultInjectorCorruption, ScriptedStrikesDeliverInOrderWithoutRng) {
  sim::Simulator sim;
  sim::FaultPlan plan;
  plan.corrupt_machine_at(2, 20.0).corrupt_replica_at(0, 7, 10.0);
  sim::FaultInjector inj(sim, plan, Rng(11), 4);
  inj.set_handlers([](std::size_t) {}, [](std::size_t) {});
  std::vector<std::tuple<std::size_t, std::int64_t, double>> strikes;
  inj.set_corruption_handler(
      [&](std::size_t m, std::int64_t block, double pick) {
        strikes.emplace_back(m, block, pick);
      });
  inj.start();
  run_until(sim, 100.0);

  ASSERT_EQ(strikes.size(), 2u);
  // Time order, and scripted strikes pass pick = 0 (no RNG consumed).
  EXPECT_EQ(strikes[0], (std::tuple<std::size_t, std::int64_t, double>{
                            0u, 7, 0.0}));
  EXPECT_EQ(std::get<0>(strikes[1]), 2u);
  EXPECT_EQ(std::get<1>(strikes[1]), -1);
  EXPECT_DOUBLE_EQ(std::get<2>(strikes[1]), 0.0);
  EXPECT_EQ(inj.corruptions(), 2u);
  ASSERT_EQ(inj.corrupt_log().size(), 2u);
  EXPECT_DOUBLE_EQ(inj.corrupt_log()[0].time, 10.0);
  EXPECT_DOUBLE_EQ(inj.corrupt_log()[1].time, 20.0);
}

TEST(FaultInjectorCorruption, StochasticStrikesReproduciblePerSeed) {
  auto collect = [](std::uint64_t seed) {
    sim::Simulator sim;
    sim::FaultPlan plan;
    plan.corruption_mtbf = 40.0;
    sim::FaultInjector inj(sim, plan, Rng(seed), 4);
    inj.set_handlers([](std::size_t) {}, [](std::size_t) {});
    inj.set_corruption_handler(
        [](std::size_t, std::int64_t, double) {});
    inj.start();
    run_until(sim, 400.0);
    std::vector<std::tuple<Seconds, std::size_t>> log;
    for (const auto& t : inj.corrupt_log()) {
      log.emplace_back(t.time, t.machine);
    }
    return log;
  };
  const auto a = collect(5);
  const auto b = collect(5);
  const auto c = collect(6);
  EXPECT_GT(a.size(), 4u);  // ~10 expected strikes per machine
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// --- NameNode checksum bookkeeping -------------------------------------------

TEST(NameNodeCorruption, CorruptAndConfirmBookkeeping) {
  hdfs::NameNode nn(Rng(2), 6, 3);
  const auto blocks = nn.create_file(64.0);
  const hdfs::BlockId blk = blocks[0];
  const auto locs = nn.locations(blk);  // copy: confirm mutates the set
  ASSERT_EQ(locs.size(), 3u);

  // Only a live, still-clean replica can newly rot.
  EXPECT_TRUE(nn.corrupt_replica(blk, locs[0]));
  EXPECT_FALSE(nn.corrupt_replica(blk, locs[0]));  // already rotten
  EXPECT_TRUE(nn.replica_corrupt(blk, locs[0]));
  EXPECT_FALSE(nn.replica_corrupt(blk, locs[1]));
  EXPECT_EQ(nn.latent_corrupt_replicas(), 1u);
  EXPECT_FALSE(nn.all_replicas_corrupt(blk));

  const auto clean = nn.clean_locations(blk);
  EXPECT_EQ(clean.size(), 2u);
  EXPECT_EQ(std::count(clean.begin(), clean.end(), locs[0]), 0);

  // Detection drops the replica into the under-replication queue like a
  // dead-node drop, but keeps the physical marker.
  nn.confirm_corrupt(blk, locs[0]);
  EXPECT_FALSE(nn.is_local(blk, locs[0]));
  EXPECT_EQ(nn.live_replicas(blk), 2u);
  EXPECT_TRUE(nn.queued_for_rereplication(blk));
  EXPECT_TRUE(nn.mutated());
  EXPECT_FALSE(nn.block_lost(blk));
}

TEST(NameNodeCorruption, RereplicationRefusesCorruptSources) {
  hdfs::NameNode nn(Rng(3), 6, 3);
  const hdfs::BlockId blk = nn.create_file(64.0)[0];
  const auto locs = nn.locations(blk);
  ASSERT_EQ(locs.size(), 3u);

  // locs[0] latently corrupt, locs[1] confirmed (dropped), locs[2] clean:
  // the copy source must be the clean holder — a corrupt source would just
  // clone the damage.
  ASSERT_TRUE(nn.corrupt_replica(blk, locs[0]));
  ASSERT_TRUE(nn.corrupt_replica(blk, locs[1]));
  nn.confirm_corrupt(blk, locs[1]);

  const auto work = nn.next_rereplication();
  ASSERT_TRUE(work.has_value());
  EXPECT_EQ(work->block, blk);
  EXPECT_EQ(work->source, locs[2]);
  EXPECT_TRUE(nn.datanode_alive(work->target));
  EXPECT_FALSE(nn.is_local(blk, work->target));

  // The copy lands clean: the new replica is not corrupt.
  nn.add_replica(blk, work->target);
  EXPECT_FALSE(nn.replica_corrupt(blk, work->target));
  EXPECT_EQ(nn.live_replicas(blk), 3u);
}

TEST(NameNodeCorruption, AllReplicasCorruptEndsInLoudLoss) {
  hdfs::NameNode nn(Rng(4), 6, 3);
  const hdfs::BlockId blk = nn.create_file(64.0)[0];
  const auto locs = nn.locations(blk);
  for (MachineId n : locs) ASSERT_TRUE(nn.corrupt_replica(blk, n));
  EXPECT_TRUE(nn.all_replicas_corrupt(blk));

  for (MachineId n : locs) nn.confirm_corrupt(blk, n);
  EXPECT_TRUE(nn.block_lost(blk));
  ASSERT_EQ(nn.lost_blocks().size(), 1u);
  EXPECT_EQ(nn.lost_blocks()[0], blk);
  EXPECT_EQ(nn.live_replicas(blk), 0u);
  // A lost block cannot be repaired; the queue must not hold it forever.
  EXPECT_FALSE(nn.rereplication_possible(blk));
}

// --- run-level fixtures ------------------------------------------------------

std::vector<workload::JobSpec> small_workload() {
  auto jobs = exp::job_batch(workload::AppKind::kWordcount, 64.0 * 24, 2, 3);
  jobs[1].submit_time = 40.0;
  jobs[2].submit_time = 300.0;  // its splits are read late: strikes can land
  return jobs;                  // before the checksummed read
}

exp::RunConfig base_config(std::uint64_t seed) {
  exp::RunConfig cfg;
  cfg.seed = seed;
  cfg.audit.enabled = true;
  return cfg;
}

exp::RunMetrics run_jobs(const exp::RunConfig& cfg,
                         const std::vector<workload::JobSpec>& jobs) {
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
  run.submit(jobs);
  run.execute();
  return run.metrics();
}

// --- digest neutrality -------------------------------------------------------

TEST(CorruptionRun, DisabledFamilyIsDigestNeutral) {
  const auto jobs = small_workload();
  const exp::RunMetrics plain = run_jobs(base_config(3), jobs);

  // Populate the data-integrity knobs but leave every master switch off
  // (scrub_period = 0, corruption probabilities = 0): the run must schedule
  // no scrub events, install no hooks, consume no RNG, and reproduce the
  // plain digest bit for bit.
  exp::RunConfig cfg = base_config(3);
  cfg.job_tracker.scrub_mbps = 777.0;        // inert while scrub_period == 0
  cfg.job_tracker.verify_task_output = true; // inert while the prob is 0
  const exp::RunMetrics loaded = run_jobs(cfg, jobs);

  ASSERT_GT(plain.audit.digest_records, 0u);
  EXPECT_EQ(plain.determinism_digest, loaded.determinism_digest);
  EXPECT_EQ(plain.audit.digest_records, loaded.audit.digest_records);
  EXPECT_EQ(loaded.corruptions_injected, 0u);
  EXPECT_EQ(loaded.scrub_passes, 0u);
  EXPECT_EQ(loaded.task_output_corruptions, 0u);
}

// --- read-time detection -----------------------------------------------------

TEST(CorruptionRun, ChecksummedReadFailsOverPastCorruptReplica) {
  // One 96-map job: the first wave fills the slots, so at t=30 plenty of
  // splits are still unread.  Rot two of the three replicas of every
  // still-pending split — whichever machine the map later lands on, at most
  // one replica answers its checksum, so reads must fail over (and never
  // lose the block: one clean replica always remains).
  const auto jobs = std::vector<workload::JobSpec>{
      exp::single_job(workload::AppKind::kWordcount, 64.0 * 96, 2)};
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, base_config(7));
  run.submit(jobs);
  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  while (sim.now() < 30.0) ASSERT_TRUE(sim.step());

  const mr::JobState& js = jt.job(0);
  std::size_t struck = 0;
  for (mr::TaskIndex i = 0; i < js.num_maps(); ++i) {
    if (js.status(mr::TaskKind::kMap, i) != mr::TaskStatus::kPending) continue;
    const hdfs::BlockId blk = js.task(mr::TaskKind::kMap, i).block;
    const auto locs = run.namenode().locations(blk);
    ASSERT_EQ(locs.size(), 3u);
    jt.inject_corruption(locs[0], static_cast<std::int64_t>(blk), 0.0);
    jt.inject_corruption(locs[1], static_cast<std::int64_t>(blk), 0.0);
    ++struck;
  }
  ASSERT_GT(struck, 4u);  // the job must still have unread splits at t=30
  run.execute();
  const exp::RunMetrics m = run.metrics();

  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  EXPECT_EQ(m.corruptions_injected, 2 * struck);
  EXPECT_GT(m.corrupt_read_failovers, 0u);
  EXPECT_GT(m.corruptions_detected, 0u);
  // Read-time detection alone: whatever no read ever touched stays latent.
  EXPECT_EQ(m.corruptions_injected,
            m.corruptions_detected + m.corruptions_latent);
  EXPECT_EQ(m.corruptions_lost, 0u);
  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_EQ(m.jobs.size(), jobs.size());
}

// --- background scrubbing ----------------------------------------------------

TEST(CorruptionRun, ScrubberDetectsAndRepairsThroughRereplication) {
  const auto jobs = small_workload();
  // Probe run: placement depends only on the seed and file-creation order,
  // so the real run places the first job's blocks identically.
  std::vector<std::pair<MachineId, hdfs::BlockId>> strikes;
  {
    exp::Run probe(exp::paper_fleet(), exp::SchedulerKind::kEAnt,
                   base_config(9));
    probe.submit(jobs);
    probe.execute();
    for (hdfs::BlockId b = 0; b < 24; b += 3) {  // distinct first-job blocks
      strikes.emplace_back(probe.namenode().locations(b)[0], b);
    }
  }

  // Rot one replica of each chosen block just after creation; whether or
  // not a read ever touches them, the next full-coverage scrub pass must
  // find every strike and the re-replication queue must repair it from a
  // clean source.
  exp::RunConfig cfg = base_config(9);
  for (const auto& [machine, block] : strikes) {
    cfg.faults.corrupt_replica_at(machine, static_cast<std::int64_t>(block),
                                  5.0);
  }
  cfg.job_tracker.scrub_period = 20.0;
  cfg.job_tracker.scrub_mbps = 1.0e6;

  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
  run.submit(jobs);
  run.execute();
  const exp::RunMetrics m = run.metrics();

  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  EXPECT_GT(m.scrub_passes, 0u);
  EXPECT_GT(m.scrubbed_mb, 0.0);
  EXPECT_EQ(m.corruptions_injected, strikes.size());
  // Full-coverage scrubbing leaves nothing latent...
  EXPECT_EQ(m.corruptions_detected, m.corruptions_injected);
  EXPECT_EQ(m.corruptions_latent, 0u);
  // ...and every detection settles as a completed clean copy.
  EXPECT_EQ(m.corruptions_repaired, m.corruptions_detected);
  EXPECT_EQ(m.corruptions_lost, 0u);
  EXPECT_GT(m.rereplication_mb, 0.0);
  // Detection latencies are recorded per detection, and detection beats the
  // read path's "whenever a map happens to look".
  EXPECT_EQ(run.job_tracker().corruption_detection_latencies().size(),
            m.corruptions_detected);
  EXPECT_GT(m.mean_detection_latency, 0.0);
  EXPECT_EQ(m.jobs_failed, 0u);
}

TEST(CorruptionRun, ScrubberStillSettlesUnderBrownout) {
  // The admission-test overload mix: base rates x100 saturates the paper
  // fleet, so the detector escalates and the brownout reactions (including
  // the scrub/re-replication throttle) spend real time engaged.  Corruption
  // must still settle: detections end repaired, never silently dropped.
  auto tcfg = tenancy::presets::three_tenant_mix(1800.0, 100.0);
  sched::TenantShareConfig shares;
  for (const auto& t : tcfg.tenants) {
    shares.tenants.push_back(
        sched::TenantQueue{t.profile.tenant, t.profile.name, t.profile.weight});
  }
  const tenancy::TrafficGenerator gen(std::move(tcfg));
  Rng trng(13);
  const auto jobs = gen.generate(trng);

  exp::RunConfig cfg;
  cfg.seed = 13;
  cfg.audit.enabled = true;
  cfg.tenancy = shares;
  cfg.job_tracker.admission.enabled = true;
  for (const auto& q : shares.tenants) {
    cfg.job_tracker.admission.tenants.push_back(
        mr::AdmissionTenantPolicy{q.tenant, q.weight});
  }
  for (std::size_t m = 0; m < 16; ++m) cfg.faults.corrupt_machine_at(m, 60.0);
  cfg.job_tracker.scrub_period = 30.0;
  cfg.job_tracker.scrub_mbps = 1.0e6;

  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kCapacity, cfg);
  run.submit(jobs);
  run.execute();
  const exp::RunMetrics m = run.metrics();

  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  EXPECT_GT(m.time_saturated, 0.0);  // brownout was live
  EXPECT_GT(m.scrub_passes, 0u);
  EXPECT_GT(m.corruptions_injected, 0u);
  EXPECT_EQ(m.corruptions_detected,
            m.corruptions_repaired + m.corruptions_lost);
  EXPECT_EQ(m.corruptions_injected,
            m.corruptions_detected + m.corruptions_latent);
}

// --- loud loss ---------------------------------------------------------------

TEST(CorruptionRun, AllReplicasCorruptLosesBlockLoudly) {
  // 96 maps: at t=30 some splits are still unread.  Rot ALL replicas of one
  // of them — the eventual checksummed read fails over through every copy,
  // the block is lost, and the map fails LOUDLY (burning attempts until the
  // job fails) instead of silently consuming garbage.
  const auto jobs = std::vector<workload::JobSpec>{
      exp::single_job(workload::AppKind::kWordcount, 64.0 * 96, 2)};
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, base_config(21));
  run.submit(jobs);
  auto& sim = run.simulator();
  auto& jt = run.job_tracker();
  while (sim.now() < 30.0) ASSERT_TRUE(sim.step());

  const mr::JobState& js = jt.job(0);
  std::optional<hdfs::BlockId> victim;
  for (mr::TaskIndex i = 0; i < js.num_maps(); ++i) {
    if (js.status(mr::TaskKind::kMap, i) == mr::TaskStatus::kPending) {
      victim = js.task(mr::TaskKind::kMap, i).block;
      break;
    }
  }
  ASSERT_TRUE(victim.has_value());
  const auto locs = run.namenode().locations(*victim);  // copy: confirm mutates
  ASSERT_EQ(locs.size(), 3u);
  for (MachineId n : locs) {
    jt.inject_corruption(n, static_cast<std::int64_t>(*victim), 0.0);
  }
  run.execute();
  const exp::RunMetrics m = run.metrics();

  EXPECT_EQ(m.corruptions_injected, 3u);
  EXPECT_EQ(m.corruptions_detected, 3u);
  EXPECT_EQ(m.corruptions_lost, 3u);
  EXPECT_EQ(m.corruptions_repaired, 0u);
  EXPECT_EQ(m.corruptions_latent, 0u);
  EXPECT_GE(m.corrupt_read_failovers, 1u);
  EXPECT_TRUE(run.namenode().block_lost(*victim));
  // The job owning the lost split fails — loudly, not silently.
  EXPECT_EQ(m.jobs_failed, 1u);
}

// --- verified shuffle --------------------------------------------------------

TEST(CorruptionRun, ShuffleCorruptionRecoversWithoutLivelock) {
  exp::RunConfig cfg = base_config(17);
  // Shuffle verification rides the fabric fetch path; the legacy scalar
  // model has no flows, so the test needs a topology.
  cfg.topology = net::TopologySpec::flat();
  cfg.faults.shuffle_corruption_prob = 0.15;
  const auto jobs =
      exp::job_batch(workload::AppKind::kTerasort, 64.0 * 16, 4, 3);
  const exp::RunMetrics m = run_jobs(cfg, jobs);

  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  EXPECT_GT(m.shuffle_corruptions, 0u);
  // A corrupt payload is discarded whole and refetched through the
  // fetch-failure machinery — every job still lands.
  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_EQ(m.jobs.size(), jobs.size());
  // Payload damage is a transport fault, not a stored-replica one.
  EXPECT_EQ(m.corruptions_injected, 0u);
  EXPECT_EQ(m.corruptions_detected, 0u);
}

// --- end-to-end output verification ------------------------------------------

TEST(CorruptionRun, OutputVerificationRejectsAndReexecutes) {
  exp::RunConfig cfg = base_config(19);
  cfg.job_tracker.verify_task_output = true;
  cfg.faults.task_output_corruption_prob = 0.05;
  const auto jobs = small_workload();
  const exp::RunMetrics m = run_jobs(cfg, jobs);

  // kRevertDone compensation keeps the auditor's completion ledger clean
  // even though attempts report done and are then rejected.
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  EXPECT_GT(m.task_output_corruptions, 0u);
  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_EQ(m.jobs.size(), jobs.size());
  // The redone work is charged to corruption, inside the waste hierarchy.
  EXPECT_GT(m.wasted_energy_corruption, 0.0);
  EXPECT_LE(m.wasted_energy_corruption, m.wasted_energy + 1e-9);
  EXPECT_LE(m.wasted_energy, m.total_energy);
}

// --- conservation & determinism ----------------------------------------------

TEST(CorruptionRun, ConservationHoldsWithEveryFamilyActive) {
  exp::RunConfig cfg = base_config(23);
  cfg.topology = net::TopologySpec::flat();
  cfg.faults.corruption_mtbf = 400.0;
  cfg.faults.shuffle_corruption_prob = 0.05;
  cfg.faults.task_output_corruption_prob = 0.02;
  cfg.job_tracker.verify_task_output = true;
  cfg.job_tracker.scrub_period = 40.0;
  cfg.job_tracker.scrub_mbps = 2000.0;
  const auto jobs = small_workload();
  const exp::RunMetrics m = run_jobs(cfg, jobs);

  // The auditor runs its own corruption-conservation check at finalize;
  // clean() means both ledger identities held inside the run.
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  EXPECT_GT(m.corruptions_injected, 0u);
  EXPECT_EQ(m.corruptions_injected,
            m.corruptions_detected + m.corruptions_latent);
  EXPECT_GE(m.corruptions_detected,
            m.corruptions_repaired + m.corruptions_lost);
  EXPECT_LE(m.wasted_energy_corruption, m.wasted_energy + 1e-9);
  EXPECT_LE(m.wasted_energy, m.total_energy);
  EXPECT_EQ(m.jobs_failed, 0u);
}

TEST(CorruptionRun, DeterministicAcrossRepeatsSensitiveToSeed) {
  auto digest_of = [](std::uint64_t seed) {
    exp::RunConfig cfg;
    cfg.seed = seed;
    cfg.audit.enabled = true;
    cfg.faults.corruption_mtbf = 300.0;
    cfg.job_tracker.scrub_period = 25.0;
    cfg.job_tracker.scrub_mbps = 5000.0;
    exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kEAnt, cfg);
    run.submit(small_workload());
    run.execute();
    const exp::RunMetrics m = run.metrics();
    return std::tuple<std::uint64_t, std::size_t, std::size_t>{
        m.determinism_digest, m.corruptions_injected, m.corruptions_detected};
  };
  const auto a = digest_of(31);
  const auto b = digest_of(31);
  const auto c = digest_of(32);
  EXPECT_EQ(a, b);
  EXPECT_NE(std::get<0>(a), std::get<0>(c));
  EXPECT_GT(std::get<1>(a), 0u);
}

}  // namespace
}  // namespace eant
