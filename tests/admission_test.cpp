// Overload-protection suite: detector hysteresis, digest neutrality of the
// disabled subsystem, bounded per-tenant queues under sustained bursty +
// diurnal overload, backpressure retry/conservation accounting, brownout
// engagement, termination with the retry budget exhausted, determinism, and
// the bench CLI's double-argument validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "exp/builders.h"
#include "exp/cli.h"
#include "exp/runner.h"
#include "mapreduce/admission.h"
#include "sched/capacity.h"
#include "tenancy/presets.h"
#include "tenancy/traffic.h"

namespace eant {
namespace {

/// Preset-rate multiplier that saturates the paper fleet (the preset's base
/// rates target the idle 48-hour SLO bake-off; the knee is near 45x).
constexpr double kOverloadRate = 100.0;

struct Mix {
  sched::TenantShareConfig shares;
  std::vector<workload::JobSpec> jobs;
};

Mix make_mix(double rate, Seconds horizon, std::uint64_t seed) {
  auto cfg = tenancy::presets::three_tenant_mix(horizon, rate);
  Mix out;
  for (const auto& t : cfg.tenants) {
    out.shares.tenants.push_back(
        sched::TenantQueue{t.profile.tenant, t.profile.name, t.profile.weight});
  }
  const tenancy::TrafficGenerator gen(std::move(cfg));
  Rng rng(seed);
  out.jobs = gen.generate(rng);
  return out;
}

exp::RunConfig overload_config(const Mix& mix, std::uint64_t seed,
                               bool admission) {
  exp::RunConfig cfg;
  cfg.seed = seed;
  cfg.audit.enabled = true;
  cfg.tenancy = mix.shares;
  if (admission) {
    cfg.job_tracker.admission.enabled = true;
    for (const auto& q : mix.shares.tenants) {
      cfg.job_tracker.admission.tenants.push_back(
          mr::AdmissionTenantPolicy{q.tenant, q.weight});
    }
  }
  return cfg;
}

exp::RunMetrics run_mix(const Mix& mix, const exp::RunConfig& cfg) {
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kCapacity, cfg);
  run.submit(mix.jobs);
  run.execute();
  return run.metrics();
}

/// Maximum number of simultaneously admitted (submitted, unfinished) jobs,
/// reconstructed from the per-job intervals.
std::size_t max_concurrent(const std::vector<exp::JobMetrics>& jobs) {
  std::vector<std::pair<Seconds, int>> events;
  events.reserve(2 * jobs.size());
  for (const auto& j : jobs) {
    events.emplace_back(j.submit_time, +1);
    events.emplace_back(j.submit_time + j.completion_time, -1);
  }
  std::sort(events.begin(), events.end());
  std::size_t depth = 0, peak = 0;
  for (const auto& [t, d] : events) {
    depth = static_cast<std::size_t>(static_cast<long>(depth) + d);
    peak = std::max(peak, depth);
  }
  return peak;
}

// --- OverloadDetector -------------------------------------------------------

TEST(OverloadDetector, EscalatesImmediatelyDecaysOneLevelWithHysteresis) {
  mr::AdmissionConfig cfg;
  cfg.ewma_alpha = 1.0;  // no smoothing: the test drives the raw signals
  mr::OverloadDetector det(cfg);
  EXPECT_EQ(det.state(), mr::OverloadState::kNormal);

  // Below every threshold: Normal.
  EXPECT_EQ(det.fold(0.5, 0.5, 0.0), mr::OverloadState::kNormal);

  // A backlog past the critical threshold escalates straight to Critical —
  // no one-level-per-tick ramp on the way up.
  EXPECT_EQ(det.fold(1.0, cfg.critical_backlog + 0.5, 0.0),
            mr::OverloadState::kCritical);

  // Signals drop to zero: decay is one level per tick, not a jump.
  EXPECT_EQ(det.fold(0.0, 0.0, 0.0), mr::OverloadState::kSaturated);
  EXPECT_EQ(det.fold(0.0, 0.0, 0.0), mr::OverloadState::kElevated);
  EXPECT_EQ(det.fold(0.0, 0.0, 0.0), mr::OverloadState::kNormal);

  // Hysteresis: occupancy below the escalation threshold but above
  // hysteresis * threshold holds the level; only dropping below the
  // hysteresis band releases it.
  EXPECT_EQ(det.fold(cfg.elevated_occupancy + 0.05, 0.0, 0.0),
            mr::OverloadState::kElevated);
  const double held = cfg.elevated_occupancy * cfg.hysteresis + 0.01;
  EXPECT_EQ(det.fold(held, 0.0, 0.0), mr::OverloadState::kElevated);
  const double released = cfg.elevated_occupancy * cfg.hysteresis - 0.05;
  EXPECT_EQ(det.fold(released, 0.0, 0.0), mr::OverloadState::kNormal);

  EXPECT_STREQ(mr::overload_state_name(mr::OverloadState::kNormal), "normal");
  EXPECT_STREQ(mr::overload_state_name(mr::OverloadState::kCritical),
               "critical");
}

TEST(OverloadDetector, OccupancyPlusSlackPressureMeansSaturated) {
  mr::AdmissionConfig cfg;
  cfg.ewma_alpha = 1.0;
  mr::OverloadDetector det(cfg);
  // Full occupancy alone is only Elevated...
  EXPECT_EQ(det.fold(1.0, 0.0, 0.0), mr::OverloadState::kElevated);
  // ...but full occupancy with most deadlined jobs predicted to miss is
  // Saturated even while the queue itself is short.
  EXPECT_EQ(det.fold(1.0, 0.0, cfg.slack_pressure_threshold + 0.1),
            mr::OverloadState::kSaturated);
}

// --- digest neutrality ------------------------------------------------------

TEST(Admission, DisabledSubsystemIsDigestNeutral) {
  const Mix mix = make_mix(10.0, 1800.0, 3);

  const exp::RunMetrics plain = run_mix(mix, overload_config(mix, 3, false));

  // Populate every admission knob but leave the master switch off: the run
  // must schedule no detector events, consume no RNG, and reproduce the
  // plain digest bit for bit.
  exp::RunConfig cfg = overload_config(mix, 3, false);
  cfg.job_tracker.admission.detector_interval = 5.0;
  cfg.job_tracker.admission.queue_bound_per_weight = 2.0;
  cfg.job_tracker.admission.max_retries = 1;
  cfg.job_tracker.admission.retry_seed = 99;
  for (const auto& q : mix.shares.tenants) {
    cfg.job_tracker.admission.tenants.push_back(
        mr::AdmissionTenantPolicy{q.tenant, q.weight});
  }
  const exp::RunMetrics loaded = run_mix(mix, cfg);

  ASSERT_GT(plain.audit.digest_records, 0u);
  EXPECT_EQ(plain.determinism_digest, loaded.determinism_digest);
  EXPECT_EQ(plain.audit.digest_records, loaded.audit.digest_records);
  EXPECT_FALSE(loaded.admission_active);
  EXPECT_EQ(loaded.jobs_rejected, 0u);
}

// --- bounded queues under overload ------------------------------------------

TEST(Admission, OverloadBoundsQueuesWithAdmissionGrowsWithout) {
  // The trace mixes the bursty (MMPP-2) interactive stream, the diurnal
  // batch stream and the flat background stream, all at ~2x the knee.
  const Mix mix = make_mix(kOverloadRate, 1800.0, 7);

  const exp::RunMetrics off = run_mix(mix, overload_config(mix, 7, false));
  const exp::RunMetrics on = run_mix(mix, overload_config(mix, 7, true));

  ASSERT_TRUE(on.admission_active);
  EXPECT_TRUE(on.audit.clean()) << on.audit.summary();
  EXPECT_TRUE(off.audit.clean()) << off.audit.summary();
  EXPECT_GT(on.jobs_rejected, 0u);

  // Every tenant's admitted-but-unfinished peak respects its weighted bound.
  std::size_t bound_sum = 0;
  for (const auto& t : on.by_tenant) {
    ASSERT_GT(t.backlog_bound, 0u) << "tenant " << t.tenant;
    EXPECT_LE(t.peak_backlog, t.backlog_bound) << "tenant " << t.tenant;
    bound_sum += t.backlog_bound;
  }
  const std::size_t depth_on = max_concurrent(on.jobs);
  const std::size_t depth_off = max_concurrent(off.jobs);
  EXPECT_LE(depth_on, bound_sum);
  // Without protection the open-loop backlog grows far past the bounds.
  EXPECT_GT(depth_off, 2 * bound_sum);
}

// --- backpressure accounting ------------------------------------------------

TEST(Admission, RetryConservationNoJobVanishes) {
  const Mix mix = make_mix(60.0, 1200.0, 11);
  const exp::RunMetrics m = run_mix(mix, overload_config(mix, 11, true));

  ASSERT_TRUE(m.admission_active);
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  EXPECT_GT(m.admission_retries, 0u);

  // Every trace arrival is accounted: it either ran to completion/failure
  // (m.jobs) or was dropped after the retry budget — never lost in the
  // retry loop.  (The auditor's admission-conservation check enforces the
  // same ledger identity; audit.clean() above covers it.)
  EXPECT_EQ(m.jobs.size() + m.jobs_dropped, mix.jobs.size());

  // Rejections are counted apart from deadline misses: rejected jobs never
  // ran, so they cannot also appear as missed-deadline rows.
  std::size_t misses = 0;
  for (const auto& j : m.jobs) {
    if (j.missed_deadline) ++misses;
  }
  EXPECT_EQ(misses, m.deadline_misses);
  EXPECT_GT(m.jobs_rejected, 0u);
}

// --- brownout ---------------------------------------------------------------

TEST(Admission, BrownoutEngagesUnderSaturation) {
  const Mix mix = make_mix(kOverloadRate, 1800.0, 13);
  const exp::RunConfig cfg = overload_config(mix, 13, true);
  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kCapacity, cfg);
  run.submit(mix.jobs);
  run.execute();
  const exp::RunMetrics m = run.metrics();

  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  // The detector both escalated and decayed (transitions count each
  // direction), and spent real time in Saturated — the brownout reactions
  // (speculation off, locality waits dropped, re-replication throttled)
  // were live for that window.
  EXPECT_GE(m.overload_transitions, 3u);
  EXPECT_GT(m.time_saturated, 0.0);
  EXPECT_LT(m.time_elevated + m.time_saturated + m.time_critical, m.makespan);
  // By drain time the overload has passed its peak.
  EXPECT_LT(run.job_tracker().overload_state(), mr::OverloadState::kCritical);
}

// --- retry budget exhaustion ------------------------------------------------

TEST(Admission, ZeroRetryBudgetDropsButRunTerminates) {
  const Mix mix = make_mix(60.0, 1200.0, 17);
  exp::RunConfig cfg = overload_config(mix, 17, true);
  cfg.job_tracker.admission.max_retries = 0;
  cfg.job_tracker.admission.queue_bound_per_weight = 1.0;

  // Termination itself is the point: dropped jobs must leave jobs_expected_
  // so all_done() can hold with most of the trace never admitted.
  const exp::RunMetrics m = run_mix(mix, cfg);
  EXPECT_TRUE(m.audit.clean()) << m.audit.summary();
  EXPECT_GT(m.jobs_dropped, 0u);
  EXPECT_EQ(m.admission_retries, 0u);
  EXPECT_EQ(m.jobs.size() + m.jobs_dropped, mix.jobs.size());
}

// --- determinism ------------------------------------------------------------

TEST(Admission, DeterministicAcrossRepeatsSensitiveToSeed) {
  std::vector<std::uint64_t> digests;
  for (const std::uint64_t seed : {21u, 22u}) {
    const Mix mix = make_mix(60.0, 900.0, seed);
    const exp::RunMetrics a = run_mix(mix, overload_config(mix, seed, true));
    const exp::RunMetrics b = run_mix(mix, overload_config(mix, seed, true));
    ASSERT_GT(a.audit.digest_records, 0u);
    EXPECT_EQ(a.determinism_digest, b.determinism_digest);
    EXPECT_EQ(a.jobs_rejected, b.jobs_rejected);
    EXPECT_EQ(a.admission_retries, b.admission_retries);
    EXPECT_EQ(a.overload_transitions, b.overload_transitions);
    digests.push_back(a.determinism_digest);
  }
  EXPECT_NE(digests[0], digests[1]);
}

// --- bench CLI --------------------------------------------------------------

TEST(Cli, DoubleArgParsesDefaultsAndRejectsBadInput) {
  {
    const char* argv[] = {"prog", "2.5"};
    exp::Cli cli(2, const_cast<char**>(argv), "prog [x]");
    EXPECT_DOUBLE_EQ(cli.double_arg("x", 1.0, 0.05, 50.0), 2.5);
    cli.done();
  }
  {
    const char* argv[] = {"prog"};
    exp::Cli cli(1, const_cast<char**>(argv), "prog [x]");
    EXPECT_DOUBLE_EQ(cli.double_arg("x", 1.0, 0.05, 50.0), 1.0);
  }
  // NaN, non-numeric, non-positive and partial parses are usage errors:
  // exit 2 with the usage line, not a degenerate run.
  for (const char* bad : {"nan", "bogus", "-1.0", "0", "2.5x", "inf"}) {
    const char* argv[] = {"prog", bad};
    EXPECT_EXIT(
        {
          exp::Cli cli(2, const_cast<char**>(argv), "prog [x]");
          cli.double_arg("x", 1.0, 0.05, 50.0);
        },
        ::testing::ExitedWithCode(2), "")
        << bad;
  }
}

TEST(Cli, BoolArgParsesSpellingsDefaultsAndRejectsBadInput) {
  const auto parse = [](const char* word) {
    const char* argv[] = {"prog", word};
    exp::Cli cli(2, const_cast<char**>(argv), "prog [admission]");
    const bool value = cli.bool_arg("admission", false);
    cli.done();
    return value;
  };
  for (const char* on : {"on", "true", "1", "admission"}) {
    EXPECT_TRUE(parse(on)) << on;
  }
  for (const char* off : {"off", "false", "0"}) {
    EXPECT_FALSE(parse(off)) << off;
  }
  {
    // Absent: the default answers, nothing is consumed.
    const char* argv[] = {"prog"};
    exp::Cli cli(1, const_cast<char**>(argv), "prog [admission]");
    EXPECT_TRUE(cli.bool_arg("admission", true));
    EXPECT_FALSE(cli.bool_arg("admission", false));
    cli.done();
  }
  for (const char* bad : {"yes", "2", "-on", ""}) {
    const char* argv[] = {"prog", bad};
    EXPECT_EXIT(
        {
          exp::Cli cli(2, const_cast<char**>(argv), "prog [admission]");
          cli.bool_arg("admission", false);
        },
        ::testing::ExitedWithCode(2), "")
        << "'" << bad << "'";
  }
}

}  // namespace
}  // namespace eant
