// Multi-tenant continuous-traffic suite: the trace generator (sortedness,
// horizon bounds, tenant tagging, deadlines, per-tenant stream independence,
// determinism), tenant-mode Capacity scheduling (queue mapping, weighted
// max-min shares, EDF deadline boost, audited preemption), and the
// per-tenant SLO metrics in RunMetrics.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/catalog.h"
#include "cluster/cluster.h"
#include "common/error.h"
#include "exp/builders.h"
#include "exp/runner.h"
#include "hdfs/namenode.h"
#include "mapreduce/job_tracker.h"
#include "sched/capacity.h"
#include "sim/simulator.h"
#include "tenancy/presets.h"
#include "tenancy/traffic.h"

namespace eant {
namespace {

// --- TrafficGenerator -------------------------------------------------------

TEST(Traffic, ThreeTenantMixIsSortedTaggedAndBounded) {
  auto mix = tenancy::presets::three_tenant_mix(12.0 * 3600.0);
  const Seconds horizon = mix.horizon;
  const tenancy::TrafficGenerator gen(std::move(mix));
  Rng rng(5);
  const auto jobs = gen.generate(rng);
  ASSERT_GT(jobs.size(), 100u);

  std::map<workload::TenantId, std::size_t> per_tenant;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& j = jobs[i];
    EXPECT_GE(j.submit_time, 0.0);
    EXPECT_LT(j.submit_time, horizon);
    if (i > 0) {
      EXPECT_GE(j.submit_time, jobs[i - 1].submit_time);
    }
    EXPECT_GT(j.input_mb, 0.0);
    EXPECT_GE(j.num_reduces, 1);
    ++per_tenant[j.tenant];
    // The interactive tenant carries a deadline on every job; deadlines are
    // absolute and strictly after submission.
    if (j.tenant == 1) {
      EXPECT_TRUE(j.has_deadline());
      EXPECT_GT(j.deadline, j.submit_time);
    }
  }
  ASSERT_EQ(per_tenant.size(), 3u);
  for (const auto& [tenant, count] : per_tenant) EXPECT_GT(count, 10u);
}

TEST(Traffic, DeterministicGivenSeedSensitiveToSeed) {
  auto make = [](std::uint64_t seed) {
    tenancy::TrafficGenerator gen(
        tenancy::presets::three_tenant_mix(6.0 * 3600.0));
    Rng rng(seed);
    return gen.generate(rng);
  };
  const auto a = make(7);
  const auto b = make(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].app, b[i].app);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_DOUBLE_EQ(a[i].input_mb, b[i].input_mb);
    EXPECT_DOUBLE_EQ(a[i].deadline, b[i].deadline);
  }

  const auto c = make(8);
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].submit_time < c[i].submit_time ||
              c[i].submit_time < a[i].submit_time;
  }
  EXPECT_TRUE(differs);
}

TEST(Traffic, TenantStreamsAreIndependent) {
  // Each tenant samples from its own forked stream keyed by tenant id, so
  // removing the other tenants must not perturb the survivor's trace.
  auto full_mix = tenancy::presets::three_tenant_mix(6.0 * 3600.0);
  auto solo_mix = tenancy::presets::three_tenant_mix(6.0 * 3600.0);
  solo_mix.tenants.erase(solo_mix.tenants.begin() + 2);
  solo_mix.tenants.erase(solo_mix.tenants.begin());
  ASSERT_EQ(solo_mix.tenants.size(), 1u);
  ASSERT_EQ(solo_mix.tenants[0].profile.tenant, 1u);

  const tenancy::TrafficGenerator full_gen(std::move(full_mix));
  const tenancy::TrafficGenerator solo_gen(std::move(solo_mix));
  Rng r1(9), r2(9);
  const auto full = full_gen.generate(r1);
  const auto solo = solo_gen.generate(r2);

  std::vector<workload::JobSpec> filtered;
  for (const auto& j : full) {
    if (j.tenant == 1) filtered.push_back(j);
  }
  ASSERT_EQ(filtered.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    EXPECT_DOUBLE_EQ(filtered[i].submit_time, solo[i].submit_time);
    EXPECT_DOUBLE_EQ(filtered[i].input_mb, solo[i].input_mb);
    EXPECT_EQ(filtered[i].app, solo[i].app);
  }
}

TEST(Traffic, RejectsBadConfig) {
  EXPECT_THROW(tenancy::TrafficGenerator(tenancy::TrafficConfig{}),
               PreconditionError);

  tenancy::TrafficConfig no_arrivals;
  no_arrivals.tenants.push_back(tenancy::TenantTraffic{});
  no_arrivals.tenants[0].profile.apps = {{workload::AppKind::kGrep, 1.0}};
  EXPECT_THROW(tenancy::TrafficGenerator(std::move(no_arrivals)),
               PreconditionError);

  tenancy::TrafficConfig no_apps;
  no_apps.tenants.push_back(tenancy::TenantTraffic{});
  no_apps.tenants[0].arrivals =
      std::make_unique<workload::PoissonArrivals>(1.0);
  no_apps.tenants[0].profile.apps.clear();
  EXPECT_THROW(tenancy::TrafficGenerator(std::move(no_apps)),
               PreconditionError);
}

// --- Tenant-mode Capacity: unit harness -------------------------------------

workload::JobSpec tenant_job(workload::TenantId tenant, Megabytes mb,
                             Seconds deadline = -1.0) {
  workload::JobSpec s;
  s.app = workload::AppKind::kWordcount;
  s.input_mb = mb;
  s.num_reduces = 1;
  s.tenant = tenant;
  s.deadline = deadline;
  return s;
}

struct Harness {
  Harness(sched::TenantShareConfig share,
          std::vector<std::pair<cluster::MachineType, std::size_t>> fleet)
      : cluster(sim),
        scheduler(std::make_unique<sched::CapacityScheduler>(std::move(share))),
        noise(mr::NoiseConfig::none(), Rng(21)) {
    std::size_t total = 0;
    for (const auto& [type, count] : fleet) {
      cluster.add_machines(type, count);
      total += count;
    }
    namenode = std::make_unique<hdfs::NameNode>(Rng(22), total);
    jt = std::make_unique<mr::JobTracker>(sim, cluster, *namenode, *scheduler,
                                          noise, mr::JobTrackerConfig{});
    jt->start_trackers();
  }

  void run() {
    while (!jt->all_done()) {
      ASSERT_LE(sim.now(), 7 * 24 * 3600.0);
      ASSERT_TRUE(sim.step());
    }
  }

  sched::CapacityScheduler& capacity() {
    return static_cast<sched::CapacityScheduler&>(*scheduler);
  }

  sim::Simulator sim;
  cluster::Cluster cluster;
  std::unique_ptr<sched::CapacityScheduler> scheduler;
  mr::NoiseModel noise;
  std::unique_ptr<hdfs::NameNode> namenode;
  std::unique_ptr<mr::JobTracker> jt;
};

sched::TenantShareConfig two_tenants(double w0, double w1,
                                     bool preemption = false) {
  sched::TenantShareConfig share;
  share.tenants = {{0, "alpha", w0}, {1, "beta", w1}};
  share.preemption = preemption;
  return share;
}

TEST(TenantCapacity, RejectsBadShareConfig) {
  sched::TenantShareConfig dup = two_tenants(1.0, 1.0);
  dup.tenants[1].tenant = 0;
  EXPECT_THROW(sched::CapacityScheduler{std::move(dup)}, PreconditionError);

  sched::TenantShareConfig zero_weight = two_tenants(1.0, 0.0);
  EXPECT_THROW(sched::CapacityScheduler{std::move(zero_weight)},
               PreconditionError);

  sched::TenantShareConfig bad_interval = two_tenants(1.0, 1.0);
  bad_interval.preemption_interval = 0.0;
  EXPECT_THROW(sched::CapacityScheduler{std::move(bad_interval)},
               PreconditionError);

  sched::TenantShareConfig bad_budget = two_tenants(1.0, 1.0);
  bad_budget.max_preemptions_per_round = -1;
  EXPECT_THROW(sched::CapacityScheduler{std::move(bad_budget)},
               PreconditionError);

  sched::TenantShareConfig bad_window = two_tenants(1.0, 1.0);
  bad_window.deadline_boost_window = -5.0;
  EXPECT_THROW(sched::CapacityScheduler{std::move(bad_window)},
               PreconditionError);
}

TEST(TenantCapacity, JobsMapToTenantQueuesUnknownTenantGetsOne) {
  Harness h(two_tenants(2.0, 1.0), {{cluster::catalog::desktop(), 2}});
  EXPECT_TRUE(h.capacity().tenant_mode());
  EXPECT_EQ(h.capacity().num_queues(), 2u);

  const auto j0 = h.jt->submit_now(tenant_job(0, 64.0 * 2));
  const auto j1 = h.jt->submit_now(tenant_job(1, 64.0 * 2));
  const auto j2 = h.jt->submit_now(tenant_job(7, 64.0 * 2));
  EXPECT_EQ(h.capacity().queue_of(j0), 0u);
  EXPECT_EQ(h.capacity().queue_of(j1), 1u);
  // The unconfigured tenant 7 gets a fresh weight-1 queue on first sight.
  EXPECT_EQ(h.capacity().queue_of(j2), 2u);
  EXPECT_EQ(h.capacity().num_queues(), 3u);
  EXPECT_THROW(h.capacity().queue_of(j2 + 1000), PreconditionError);
  h.run();
}

TEST(TenantCapacity, WeightedSharesTwoToOneOccupancy) {
  // Both tenants keep a deep map backlog; with weights 2:1 the busy-period
  // slot occupancy must track the weights, not the backlog sizes.
  Harness h(two_tenants(2.0, 1.0), {{cluster::catalog::desktop(), 3}});
  std::vector<mr::JobId> mine[2];
  for (int i = 0; i < 6; ++i) {
    mine[0].push_back(h.jt->submit_now(tenant_job(0, 64.0 * 20)));
    mine[1].push_back(h.jt->submit_now(tenant_job(1, 64.0 * 20)));
  }

  double busy[2] = {0.0, 0.0};
  std::size_t samples = 0;
  h.jt->set_report_listener([&](const mr::TaskReport&) {
    bool backlogged = true;
    std::size_t running[2] = {0, 0};
    for (int t = 0; t < 2; ++t) {
      bool any_pending = false;
      for (const auto id : mine[t]) {
        const auto& js = h.jt->job(id);
        running[t] += js.running(mr::TaskKind::kMap);
        any_pending = any_pending || js.has_pending(mr::TaskKind::kMap);
      }
      backlogged = backlogged && any_pending;
    }
    if (!backlogged) return;
    busy[0] += static_cast<double>(running[0]);
    busy[1] += static_cast<double>(running[1]);
    ++samples;
  });
  h.run();

  ASSERT_GT(samples, 50u);
  ASSERT_GT(busy[1], 0.0);
  const double ratio = busy[0] / busy[1];
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.6);
}

TEST(TenantCapacity, DeadlineJobOvertakesFifoBacklog) {
  // Within a queue, jobs without deadlines run FIFO — a late small job
  // starves behind the head (the Capacity contract).  Giving it a deadline
  // flips the order: EDF schedules it ahead of the backlog.
  auto finish_order = [](Seconds deadline) {
    sched::TenantShareConfig share;
    share.tenants = {{0, "solo", 1.0}};
    share.preemption = false;
    Harness h(std::move(share), {{cluster::catalog::desktop(), 1}});
    const auto big = h.jt->submit_now(tenant_job(0, 64.0 * 16));
    const auto small = h.jt->submit_now(tenant_job(0, 64.0 * 2, deadline));
    h.run();
    return h.jt->job(small).finish_time() < h.jt->job(big).finish_time();
  };
  EXPECT_FALSE(finish_order(-1.0));  // FIFO: the small job waits its turn
  EXPECT_TRUE(finish_order(120.0));  // EDF: the deadline job jumps the queue
}

// --- Preemption and SLO metrics (full exp::Run stack) -----------------------

/// A deliberately slow machine: ~128 s Wordcount maps, so a fleet saturated
/// by one tenant frees no slot for minutes — the regime where waiting for
/// natural completions cannot deliver a late tenant's share and the sweep
/// must kill running work.
cluster::MachineType glacial() {
  cluster::MachineType t;
  t.name = "Glacial";
  t.cores = 8;
  t.cpu_factor = 0.05;
  t.io_mbps = 200.0;
  return t;
}

TEST(TenantCapacity, PreemptionRebalancesStarvedTenantAuditClean) {
  exp::RunConfig cfg;
  cfg.seed = 17;
  cfg.audit.enabled = true;
  cfg.job_tracker.speculative_execution = false;
  sched::TenantShareConfig share = two_tenants(1.0, 1.0, /*preemption=*/true);
  share.preemption_interval = 10.0;
  share.max_preemptions_per_round = 8;
  cfg.tenancy = share;

  exp::Run run(exp::homogeneous(glacial(), 4), exp::SchedulerKind::kCapacity,
               cfg);
  // Tenant 0 floods all 16 map slots with ~128 s tasks; tenant 1 arrives at
  // t=30 into a fleet that frees nothing for minutes, so only preemption can
  // deliver its share.
  std::vector<workload::JobSpec> jobs;
  for (int i = 0; i < 2; ++i) jobs.push_back(tenant_job(0, 64.0 * 20));
  workload::JobSpec late = tenant_job(1, 64.0 * 5);
  late.submit_time = 30.0;
  jobs.push_back(late);
  run.submit(jobs);
  run.execute();

  const exp::RunMetrics m = run.metrics();
  EXPECT_GT(m.preempted_attempts, 0u);
  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_TRUE(m.audit.clean());
  // Victims are tenant 0's attempts; the starved tenant loses nothing.
  EXPECT_GT(m.tenant(0).preemptions, 0u);
  EXPECT_EQ(m.tenant(1).preemptions, 0u);
  auto* cap = dynamic_cast<sched::CapacityScheduler*>(&run.scheduler());
  ASSERT_NE(cap, nullptr);
  EXPECT_EQ(cap->preemptions(), m.preempted_attempts);

  // Preemption is wasted work: the killed attempts land in the waste ledger,
  // not in failed jobs.
  EXPECT_GT(m.wasted_task_seconds, 0.0);
}

TEST(TenantCapacity, PreemptionOffNeverKills) {
  exp::RunConfig cfg;
  cfg.seed = 17;
  cfg.audit.enabled = true;
  cfg.job_tracker.speculative_execution = false;
  cfg.tenancy = two_tenants(1.0, 1.0, /*preemption=*/false);

  exp::Run run(exp::homogeneous(glacial(), 4), exp::SchedulerKind::kCapacity,
               cfg);
  std::vector<workload::JobSpec> jobs;
  for (int i = 0; i < 2; ++i) jobs.push_back(tenant_job(0, 64.0 * 20));
  workload::JobSpec late = tenant_job(1, 64.0 * 5);
  late.submit_time = 30.0;
  jobs.push_back(late);
  run.submit(jobs);
  run.execute();

  const exp::RunMetrics m = run.metrics();
  EXPECT_EQ(m.preempted_attempts, 0u);
  EXPECT_EQ(m.jobs_failed, 0u);
  EXPECT_TRUE(m.audit.clean());
}

TEST(TenantMetrics, DeadlineMissesAndPerTenantAggregates) {
  exp::RunConfig cfg;
  cfg.seed = 19;
  cfg.tenancy = two_tenants(1.0, 1.0);

  exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kCapacity, cfg);
  // Tenant 0: one impossible deadline (1 s) and one comfortable one.
  std::vector<workload::JobSpec> jobs;
  jobs.push_back(tenant_job(0, 64.0 * 8, 1.0));
  jobs.push_back(tenant_job(0, 64.0 * 4, 7200.0));
  jobs.push_back(tenant_job(1, 64.0 * 4));
  run.submit(jobs);
  run.execute();

  const exp::RunMetrics m = run.metrics();
  EXPECT_EQ(m.deadline_misses, 1u);
  ASSERT_EQ(m.jobs.size(), 3u);
  std::size_t missed = 0;
  for (const auto& j : m.jobs) {
    if (j.missed_deadline) {
      ++missed;
      EXPECT_EQ(j.tenant, 0u);
      EXPECT_DOUBLE_EQ(j.deadline, 1.0);
    }
  }
  EXPECT_EQ(missed, 1u);

  const exp::TenantMetrics& t0 = m.tenant(0);
  EXPECT_EQ(t0.jobs, 2u);
  EXPECT_EQ(t0.deadline_jobs, 2u);
  EXPECT_EQ(t0.deadline_misses, 1u);
  EXPECT_GT(t0.latency_p50, 0.0);
  EXPECT_GE(t0.latency_p99, t0.latency_p50);
  EXPECT_GT(t0.energy_per_job_kj(), 0.0);
  EXPECT_GT(t0.slot_seconds, 0.0);

  const exp::TenantMetrics& t1 = m.tenant(1);
  EXPECT_EQ(t1.jobs, 1u);
  EXPECT_EQ(t1.deadline_jobs, 0u);
  EXPECT_EQ(t1.deadline_misses, 0u);
  EXPECT_THROW(m.tenant(42), PreconditionError);
}

TEST(TenantCapacity, ContinuousTrafficSliceIsDeterministic) {
  // End-to-end determinism of the bench path: same seed, same trace, same
  // tenant-mode run -> identical audit digests.
  auto digest = [] {
    auto mix = tenancy::presets::three_tenant_mix(1800.0, 4.0);
    sched::TenantShareConfig share;
    for (const auto& t : mix.tenants) {
      share.tenants.push_back(sched::TenantQueue{
          t.profile.tenant, t.profile.name, t.profile.weight});
    }
    const tenancy::TrafficGenerator gen(std::move(mix));
    Rng rng(23);
    exp::RunConfig cfg;
    cfg.seed = 23;
    cfg.audit.enabled = true;
    cfg.tenancy = share;
    exp::Run run(exp::paper_fleet(), exp::SchedulerKind::kCapacity, cfg);
    run.submit(gen.generate(rng));
    run.execute();
    const exp::RunMetrics m = run.metrics();
    EXPECT_TRUE(m.audit.clean());
    EXPECT_EQ(m.jobs_failed, 0u);
    return m.determinism_digest;
  };
  EXPECT_EQ(digest(), digest());
}

}  // namespace
}  // namespace eant
